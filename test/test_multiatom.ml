(* Tests for the multi-atom equivalent-rewriting engine and the join-view
   disclosure extension (the "ongoing work" of Section 5). *)

module Rewrite = Rewriting.Rewrite
module Expansion = Rewriting.Expansion
module General = Disclosure.General
module Query = Cq.Query

let pq = Helpers.pq

let view s = pq s

let test_expansion_basic () =
  let v = view "V(x, z) :- E(x, y), E(y, z)" in
  let rw = pq "Q(a, c) :- V(a, b), V(b, c)" in
  let expanded = Expansion.expand ~views:[ v ] rw in
  Helpers.check_int "four atoms" 4 (List.length expanded.Query.body);
  (* Two uses of the view get independent existential witnesses: a, b, c plus
     one fresh witness per view occurrence. *)
  Helpers.check_int "five variables" 5 (List.length (Query.vars expanded));
  Helpers.check_bool "equivalent to path-4" true
    (Cq.Containment.equivalent expanded (pq "P(a, c) :- E(a, p), E(p, b), E(b, q), E(q, c)"))

let test_expansion_base_atoms_kept () =
  let v = view "V(x) :- R(x, y)" in
  let rw = pq "Q(a) :- V(a), S(a)" in
  let expanded = Expansion.expand ~views:[ v ] rw in
  Helpers.check_bool "base atom kept" true
    (List.exists (fun (a : Cq.Atom.t) -> a.pred = "S") expanded.Query.body)

let test_expansion_errors () =
  Helpers.check_bool "constant head rejected" true
    (try
       Expansion.check_view (pq "V(x, 1) :- R(x)");
       false
     with Expansion.Invalid_view _ -> true);
  Helpers.check_bool "repeated head var rejected" true
    (try
       Expansion.check_view (pq "V(x, x) :- R(x)");
       false
     with Expansion.Invalid_view _ -> true);
  Helpers.check_bool "arity mismatch" true
    (try
       ignore (Expansion.expand ~views:[ view "V(x) :- R(x, y)" ] (pq "Q(a, b) :- V(a, b)"));
       false
     with Expansion.Invalid_view _ -> true)

let test_path_queries () =
  let path2 = view "V(x, z) :- E(x, y), E(y, z)" in
  (* Path of length 4 = two path-2 views joined. *)
  let q4 = pq "Q(x, z) :- E(x, a), E(a, b), E(b, c), E(c, z)" in
  (match Rewrite.find ~views:[ path2 ] q4 with
  | None -> Alcotest.fail "path-4 should rewrite over path-2"
  | Some rw ->
    Helpers.check_int "two view atoms" 2 (List.length rw.Query.body);
    Helpers.check_bool "expansion equivalent" true
      (Cq.Containment.equivalent q4 (Expansion.expand ~views:[ path2 ] rw)));
  (* Path of length 3 cannot be built from path-2 views alone. *)
  let q3 = pq "Q(x, z) :- E(x, a), E(a, b), E(b, z)" in
  Helpers.check_bool "path-3 not rewritable" false (Rewrite.rewritable ~views:[ path2 ] q3)

let test_join_across_views () =
  (* The non-decomposability of the multi-atom universe: the join query needs
     both views; neither suffices alone. *)
  let w1 = view "W1(x, y) :- R(x, y)" in
  let w2 = view "W2(y, z) :- S(y, z)" in
  let q = pq "Q(x, z) :- R(x, y), S(y, z)" in
  Helpers.check_bool "needs both" true (Rewrite.leq [ q ] [ w1; w2 ]);
  Helpers.check_bool "not from W1 alone" false (Rewrite.leq [ q ] [ w1 ]);
  Helpers.check_bool "not from W2 alone" false (Rewrite.leq [ q ] [ w2 ])

let test_projection_loss () =
  (* A view that projects away the join variable cannot support the join. *)
  let w1 = view "W1(x) :- R(x, y)" in
  let w2 = view "W2(z) :- S(y, z)" in
  let q = pq "Q(x, z) :- R(x, y), S(y, z)" in
  Helpers.check_bool "join column lost" false (Rewrite.leq [ q ] [ w1; w2 ])

let test_constant_views () =
  let v_me = view "V(y) :- F('me', y)" in
  Helpers.check_bool "same constant rewrites" true
    (Rewrite.rewritable ~views:[ v_me ] (pq "Q(y) :- F('me', y)"));
  Helpers.check_bool "different constant fails" false
    (Rewrite.rewritable ~views:[ v_me ] (pq "Q(y) :- F('you', y)"));
  Helpers.check_bool "projection of constant view" true
    (Rewrite.rewritable ~views:[ v_me ] (pq "Q() :- F('me', y)"))

let test_minimization_first () =
  (* A redundant atom must not block rewriting. *)
  let v = view "V(x, y) :- R(x, y)" in
  let q = pq "Q(x) :- R(x, y), R(x, z)" in
  Helpers.check_bool "redundant atom folded away" true (Rewrite.rewritable ~views:[ v ] q)

let test_single_atom_agreement () =
  (* On single-atom queries and views the general engine agrees with the
     positionwise procedure (deterministic samples; the qcheck version is in
     the property suite). *)
  let pairs =
    [
      ("Q(x) :- M(x, y)", "V(a, b) :- M(a, b)", true);
      ("Q(x, y) :- M(x, y)", "V(a) :- M(a, b)", false);
      ("Q() :- M(x, y)", "V(a) :- M(a, b)", true);
      ("Q(x) :- M(x, 'c')", "V(a, b) :- M(a, b)", true);
      ("Q(x) :- M(x, 'c')", "V(a) :- M(a, b)", false);
      ("Q() :- M(x, x)", "V(a) :- M(a, a)", true);
      ("Q() :- M(x, x)", "V(a, b) :- M(a, b)", true);
      ("Q() :- M(x, y)", "V(a) :- M(a, a)", false);
    ]
  in
  List.iter
    (fun (qs, vs, expected) ->
      let q = pq qs and v = view vs in
      Helpers.check_bool
        (Printf.sprintf "%s over %s" qs vs)
        expected
        (Rewrite.rewritable ~views:[ v ] q);
      (* Cross-check with the single-atom procedure. *)
      let qa = Helpers.tatom qs and va = Helpers.tatom vs in
      Helpers.check_bool
        (Printf.sprintf "agrees with Rewrite_single: %s over %s" qs vs)
        expected
        (Disclosure.Rewrite_single.leq_atom qa va))
    pairs

let test_conjunctive_order_lattice () =
  (* A small lattice over a non-decomposable universe. *)
  let w1 = view "W1(x, y) :- R(x, y)" in
  let w2 = view "W2(y, z) :- S(y, z)" in
  let j = view "J(x, z) :- R(x, y), S(y, z)" in
  let l =
    Disclosure.Lattice.build ~order:Disclosure.Order.conjunctive ~universe:[ w1; w2; j ]
  in
  let dj = Disclosure.Lattice.down l [ j ] in
  let d12 = Disclosure.Lattice.down l [ w1; w2 ] in
  (* The join view is below the pair (it can be rewritten from them)... *)
  Helpers.check_bool "J below {W1, W2}" true (Disclosure.Lattice.leq dj d12);
  (* ...but the pair is not below the join: the join loses the dangling
     tuples. *)
  Helpers.check_bool "{W1, W2} not below J" false (Disclosure.Lattice.leq d12 dj)

(* --- The Facebook join-view model ------------------------------------- *)

(* A compact friend/birthday schema: F(owner, friend), U(uid, birthday). *)
let fb_general =
  General.create
    [
      ("FriendList", pq "FriendList(y) :- F('me', y)");
      ("FriendsBirthday", pq "FriendsBirthday(u, b) :- F('me', u), U(u, b)");
      ("OwnBirthday", pq "OwnBirthday(b) :- U('me', b)");
    ]

let test_general_join_permission () =
  (* Friend birthdays, asked with the natural join: answerable. *)
  let q = pq "Q(u, b) :- F('me', u), U(u, b)" in
  Helpers.check_bool "friends birthday join" true (General.answerable fb_general q);
  Alcotest.check
    Alcotest.(list string)
    "individually sufficient views" [ "FriendsBirthday" ] (General.plus fb_general q);
  (* A stranger's birthday is not answerable. *)
  Helpers.check_bool "arbitrary birthday refused" false
    (General.answerable fb_general (pq "Q(u, b) :- U(u, b)"));
  (* Boolean: do I have any friend with a birthday record? *)
  Helpers.check_bool "boolean over join" true
    (General.answerable fb_general (pq "Q() :- F('me', u), U(u, b)"))

let test_general_monitor_wall () =
  let m =
    General.monitor fb_general
      ~partitions:
        [ ("social", [ "FriendList"; "FriendsBirthday" ]); ("own", [ "OwnBirthday" ]) ]
  in
  Helpers.check_int "both alive" 2 (List.length (General.alive m));
  Helpers.check_bool "own birthday answered" true
    (General.submit m (pq "Q(b) :- U('me', b)") = General.Answered);
  Alcotest.check Alcotest.(list string) "own chosen" [ "own" ] (General.alive m);
  Helpers.check_bool "friend list now refused" true
    (General.submit m (pq "Q(y) :- F('me', y)") = General.Refused)

let test_general_duplicate_view () =
  Alcotest.check_raises "duplicate name" (General.Duplicate_view "A") (fun () ->
      ignore (General.create [ ("A", pq "A(x) :- R(x)"); ("A", pq "A(y) :- S(y)") ]))

let test_denormalization_agreement () =
  (* The paper's claim (Section 7.2): the is_friend denormalization does not
     change decisions. Compare the join-view model against the denormalized
     single-atom model on both query styles. *)
  let denorm =
    Disclosure.Pipeline.create
      [
        Helpers.sview "FriendList(y) :- Fd('me', y, i)";
        Helpers.sview "FriendsBirthday(u, b) :- Ud(u, b, true)";
        Helpers.sview "OwnBirthday(b) :- Ud('me', b, i)";
      ]
  in
  let registry = Disclosure.Pipeline.registry denorm in
  let policy =
    Disclosure.Policy.stateless registry (Disclosure.Pipeline.views denorm)
  in
  let checks =
    [
      (* (join-style query for the general model,
          denormalized query for the single-atom model, expected decision) *)
      ("Q(u, b) :- F('me', u), U(u, b)", "Q(u, b) :- Ud(u, b, true)", true);
      ("Q(b) :- U('me', b)", "Q(b) :- Ud('me', b, i)", true);
      ("Q(u, b) :- U(u, b)", "Q(u, b) :- Ud(u, b, i)", false);
    ]
  in
  List.iter
    (fun (join_q, denorm_q, expected) ->
      Helpers.check_bool ("join model: " ^ join_q) expected
        (General.answerable fb_general (pq join_q));
      Helpers.check_bool ("denormalized model: " ^ denorm_q) expected
        (Disclosure.Policy.allowed policy
           (Disclosure.Pipeline.label denorm (pq denorm_q))))
    checks

(* Randomized generalization of the denormalization claim: for every view
   family S ⊆ {a1, a2, a3} and every query projecting T with target self /
   friend / anyone, the join-view model and the denormalized single-atom
   model make the same decision. *)
let test_denormalization_random () =
  let attrs = [ "a1"; "a2"; "a3" ] in
  let rng = Workload.Rng.create 20130622 in
  let term_of ~dist attr =
    if List.mem attr dist then Printf.sprintf "%s" attr else Printf.sprintf "%s_e" attr
  in
  for _ = 1 to 60 do
    let s = Workload.Rng.nonempty_subset rng attrs in
    (* Join-model views over P(uid, a1, a2, a3) and F(owner, friend). *)
    let p_args dist = String.concat ", " (List.map (term_of ~dist) attrs) in
    let own =
      pq
        (Printf.sprintf "OwnS(%s) :- P('me', %s)" (String.concat ", " s) (p_args s))
    in
    let friends =
      pq
        (Printf.sprintf "FriendsS(u, %s) :- F('me', u), P(u, %s)"
           (String.concat ", " s) (p_args s))
    in
    let join_model = General.create [ ("OwnS", own); ("FriendsS", friends) ] in
    (* Denormalized views over Pd(uid, a1, a2, a3, is_friend). *)
    let denorm =
      Disclosure.Pipeline.create
        [
          Helpers.sview
            (Printf.sprintf "OwnS(%s) :- Pd('me', %s, i)" (String.concat ", " s)
               (p_args s));
          Helpers.sview
            (Printf.sprintf "FriendsS(u, %s) :- Pd(u, %s, true)" (String.concat ", " s)
               (p_args s));
        ]
    in
    let policy =
      Disclosure.Policy.stateless
        (Disclosure.Pipeline.registry denorm)
        (Disclosure.Pipeline.views denorm)
    in
    let t = Workload.Rng.subset rng attrs in
    let head = String.concat ", " t in
    let target = Workload.Rng.int rng 3 in
    let join_q, denorm_q =
      match target with
      | 0 ->
        (* self *)
        ( Printf.sprintf "Q(%s) :- P('me', %s)" head (p_args t),
          Printf.sprintf "Q(%s) :- Pd('me', %s, i)" head (p_args t) )
      | 1 ->
        (* friends; the friend uid is part of the answer *)
        let head = String.concat ", " ("u" :: t) in
        ( Printf.sprintf "Q(%s) :- F('me', u), P(u, %s)" head (p_args t),
          Printf.sprintf "Q(%s) :- Pd(u, %s, true)" head (p_args t) )
      | _ ->
        (* anyone *)
        let head = String.concat ", " ("u" :: t) in
        ( Printf.sprintf "Q(%s) :- P(u, %s)" head (p_args t),
          Printf.sprintf "Q(%s) :- Pd(u, %s, i)" head (p_args t) )
    in
    let via_join = General.answerable join_model (pq join_q) in
    let via_denorm =
      Disclosure.Policy.allowed policy (Disclosure.Pipeline.label denorm (pq denorm_q))
    in
    Helpers.check_bool
      (Printf.sprintf "S={%s}: %s vs %s" (String.concat "," s) join_q denorm_q)
      via_join via_denorm
  done

let suite =
  [
    Alcotest.test_case "expansion basics" `Quick test_expansion_basic;
    Alcotest.test_case "expansion keeps base atoms" `Quick test_expansion_base_atoms_kept;
    Alcotest.test_case "expansion errors" `Quick test_expansion_errors;
    Alcotest.test_case "path queries" `Quick test_path_queries;
    Alcotest.test_case "join across views" `Quick test_join_across_views;
    Alcotest.test_case "projection loses join" `Quick test_projection_loss;
    Alcotest.test_case "constant views" `Quick test_constant_views;
    Alcotest.test_case "minimization first" `Quick test_minimization_first;
    Alcotest.test_case "single-atom agreement" `Quick test_single_atom_agreement;
    Alcotest.test_case "conjunctive-order lattice" `Quick test_conjunctive_order_lattice;
    Alcotest.test_case "join permissions (General)" `Quick test_general_join_permission;
    Alcotest.test_case "General monitor wall" `Quick test_general_monitor_wall;
    Alcotest.test_case "General duplicate view" `Quick test_general_duplicate_view;
    Alcotest.test_case "denormalization agreement" `Quick test_denormalization_agreement;
    Alcotest.test_case "denormalization agreement (randomized)" `Quick
      test_denormalization_random;
  ]
