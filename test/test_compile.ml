(* Differential suite for lib/compile: the AOT-compiled labeler must be
   bit-identical to the interpreted pipeline — same Label.t words, same
   monitor decisions, same fault-injection behaviour — on every query,
   cold and memo-warm, and across a policy reload. Its own executable
   (like the fault suite): it arms the global fault hooks and spawns a
   server for the reload regression. *)

module Tagged = Disclosure.Tagged
module RS = Disclosure.Rewrite_single
module Sview = Disclosure.Sview
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Guard = Disclosure.Guard
module Faults = Disclosure.Faults
module Policyfile = Disclosure.Policyfile
module Value = Relational.Value
module Pattern = Compile.Pattern
module Matcher = Compile.Matcher
module Diagram = Compile.Diagram
module Intern = Compile.Intern
module Artifact = Compile.Artifact
module Gen = QCheck.Gen

let pq = Cq.Parser.query_exn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count = 200

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* --- generators (self-contained; this executable owns no test helpers) -- *)

(* Three predicates so same-relation pairs are common and arities differ. *)
let preds = [ ("R", 3); ("S", 2); ("T", 4) ]

let var_names = [| "x"; "y"; "z"; "w"; "u" |]

let gen_value =
  Gen.oneofl [ Value.Int 1; Value.Int 2; Value.Str "a"; Value.Bool true ]

(* Well-formed tagged atoms: kinds chosen per variable name first, so no
   variable occurs with two kinds; constants mixed in so the const-class
   and const-branching machinery is exercised. *)
let gen_tagged_atom_of pred arity : Tagged.atom Gen.t =
  let open Gen in
  let* kinds = array_repeat (Array.length var_names) bool in
  let gen_term =
    frequency
      [
        (2, map (fun v -> Tagged.Const v) gen_value);
        ( 8,
          map
            (fun i ->
              Tagged.Var
                ( var_names.(i),
                  if kinds.(i) then Tagged.Distinguished else Tagged.Existential ))
            (int_bound (Array.length var_names - 1)) );
      ]
  in
  let* args = list_repeat arity gen_term in
  return { Tagged.pred; args }

let gen_tagged_atom : Tagged.atom Gen.t =
  let open Gen in
  let* pred, arity = oneofl preds in
  gen_tagged_atom_of pred arity

(* A same-relation (query atom, view atom) pair — the interesting case for
   the matcher/diagram equivalences (cross-relation is trivially false). *)
let gen_atom_pair : (Tagged.atom * Tagged.atom) Gen.t =
  let open Gen in
  let* pred, arity = oneofl preds in
  pair (gen_tagged_atom_of pred arity) (gen_tagged_atom_of pred arity)

let arbitrary_atom_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)" (Tagged.atom_to_string a) (Tagged.atom_to_string b))
    gen_atom_pair

(* A random view universe (1–6 views, possibly constant-bearing) plus a
   batch of random queries to label under it. *)
let gen_universe : (Sview.t list * Cq.Query.t list) Gen.t =
  let open Gen in
  let* n_views = int_range 1 6 in
  let* atoms = list_repeat n_views gen_tagged_atom in
  let views = List.mapi (fun i a -> Sview.make ~name:(Printf.sprintf "V%d" i) a) atoms in
  let gen_term =
    frequency
      [
        (2, map (fun v -> Cq.Term.Const v) gen_value);
        ( 8,
          map (fun i -> Cq.Term.Var var_names.(i)) (int_bound (Array.length var_names - 1))
        );
      ]
  in
  let gen_atom =
    let* pred, arity = oneofl preds in
    let* args = list_repeat arity gen_term in
    return (Cq.Atom.make pred args)
  in
  let gen_query =
    let* n_atoms = int_range 1 3 in
    let* body = list_repeat n_atoms gen_atom in
    let distinct = List.sort_uniq String.compare (List.concat_map Cq.Atom.vars body) in
    let* selector = list_repeat (List.length distinct) bool in
    let head =
      List.filteri (fun i _ -> List.nth selector i) distinct
      |> List.map (fun v -> Cq.Term.Var v)
    in
    return (Cq.Query.make ~name:"Q" ~head ~body ())
  in
  let* queries = list_repeat 5 gen_query in
  return (views, queries)

let arbitrary_universe =
  QCheck.make
    ~print:(fun (views, queries) ->
      Printf.sprintf "views: %s\nqueries: %s"
        (String.concat "; " (List.map Sview.to_string views))
        (String.concat "; " (List.map Cq.Query.to_string queries)))
    gen_universe

(* --- pattern encoding --------------------------------------------------- *)

let atom pred args = { Tagged.pred; args }
let dv n = Tagged.Var (n, Tagged.Distinguished)
let ev n = Tagged.Var (n, Tagged.Existential)

let test_pattern_encoding () =
  (* Classes are first-occurrence dense, one space per kind. *)
  let p = Pattern.encode_exn (atom "R" [ dv "x"; ev "y"; dv "x" ]) in
  check_bool "codes capture kind + class" true
    (p.Pattern.codes
    = [|
        Pattern.code ~tag:Pattern.tag_dist ~cls:0;
        Pattern.code ~tag:Pattern.tag_exist ~cls:0;
        Pattern.code ~tag:Pattern.tag_dist ~cls:0;
      |]);
  check_int "no constants" 0 (Array.length p.Pattern.consts);
  (* Repeated constants share a class; consts recorded in class order. *)
  let c = Tagged.Const (Value.Str "a") in
  let q = Pattern.encode_exn (atom "R" [ c; dv "x"; c ]) in
  check_bool "constant classes" true
    (q.Pattern.codes
    = [|
        Pattern.code ~tag:Pattern.tag_const ~cls:0;
        Pattern.code ~tag:Pattern.tag_dist ~cls:0;
        Pattern.code ~tag:Pattern.tag_const ~cls:0;
      |]);
  check_bool "const values in class order" true (q.Pattern.consts = [| Value.Str "a" |]);
  (* Names never matter: an alpha-renamed atom encodes identically. *)
  let a = Pattern.encode_exn (atom "S" [ dv "x"; ev "y" ]) in
  let b = Pattern.encode_exn (atom "S" [ dv "q"; ev "r" ]) in
  check_bool "alpha-invariant" true (a = b);
  (* The fragment boundary: max_arity is in, max_arity + 1 is out. *)
  let wide n = atom "W" (List.init n (fun i -> dv (Printf.sprintf "x%d" i))) in
  check_bool "arity max_arity encodes" true (Pattern.encode (wide Pattern.max_arity) <> None);
  check_bool "arity max_arity + 1 is outside the fragment" true
    (Pattern.encode (wide (Pattern.max_arity + 1)) = None)

(* --- matcher ≡ leq_atom ------------------------------------------------- *)

let matcher_equiv =
  prop "matcher programs ≡ Rewrite_single.leq_atom" arbitrary_atom_pair
    (fun (query, view) ->
      Matcher.run (Matcher.compile view) (Pattern.encode_exn query)
      = RS.leq_atom query view)

(* --- diagram ≡ matcher scan --------------------------------------------- *)

let arbitrary_diagram_case =
  let gen =
    let open Gen in
    let* pred, arity = oneofl preds in
    let* n_views = int_range 1 6 in
    let* views = list_repeat n_views (gen_tagged_atom_of pred arity) in
    let* query = gen_tagged_atom_of pred arity in
    return (views, query)
  in
  QCheck.make
    ~print:(fun (views, query) ->
      Printf.sprintf "views: %s; query: %s"
        (String.concat "; " (List.map Tagged.atom_to_string views))
        (Tagged.atom_to_string query))
    gen

let diagram_equiv =
  prop "diagram walk ≡ matcher scan" arbitrary_diagram_case (fun (views, query) ->
      let matchers =
        Array.of_list (List.mapi (fun bit v -> (Matcher.compile v, bit)) views)
      in
      let arity = List.length (List.hd views).Tagged.args in
      match Diagram.build ~views:matchers ~arity () with
      | None -> QCheck.assume_fail () (* over budget: stays on the matcher tier *)
      | Some d ->
        let p = Pattern.encode_exn query in
        let scan =
          Array.fold_left
            (fun acc (m, bit) -> if Matcher.run m p then acc lor (1 lsl bit) else acc)
            0 matchers
        in
        Diagram.eval d p = Some scan)

(* --- artifact ≡ pipeline: labels, cold and memo-warm -------------------- *)

let labels_equal (a : Label.t) (b : Label.t) = a = b

let artifact_label_equiv =
  prop "compiled labels ≡ interpreted labels (cold + warm)" arbitrary_universe
    (fun (views, queries) ->
      let pipeline = Pipeline.create views in
      let artifact = Artifact.compile pipeline in
      List.for_all
        (fun q ->
          let interpreted = Pipeline.label pipeline q in
          let cold = Artifact.label artifact q in
          (* Warm covers both memo tiers: the query memo (same interned
             structure) and the per-atom memo (same pattern). *)
          let warm = Artifact.label artifact q in
          labels_equal interpreted cold && labels_equal interpreted warm)
        queries
      && Artifact.fallbacks artifact = 0)

let artifact_atom_equiv =
  prop "compiled atom labels ≡ Pipeline.label_atom" arbitrary_universe
    (fun (views, _) ->
      let pipeline = Pipeline.create views in
      let artifact = Artifact.compile pipeline in
      let atoms =
        Gen.generate ~n:10 ~rand:(Random.State.make [| 0xA70 |]) gen_tagged_atom
      in
      List.for_all
        (fun a -> Artifact.label_atom artifact a = Pipeline.label_atom pipeline a)
        atoms)

(* --- monitor decisions: compiled serving path ≡ interpreted submit ------ *)

let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"
let v4 = Sview.of_string "V4(x, y) :- Contacts(x, y, 'Intern')"

let fixed_views = [ v1; v2; v3; v4 ]

let register_all register =
  register ~principal:"calendar-app" ~partitions:[ ("default", [ v2 ]) ];
  register ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  register ~principal:"hr-app" ~partitions:[ ("default", [ v3; v4 ]) ]

let principals = [| "calendar-app"; "crm-app"; "hr-app" |]

let fixed_queries =
  [|
    pq "Q(x) :- Meetings(x, y)";
    pq "Q(x, y) :- Meetings(x, y)";
    pq "Q(y) :- Meetings(x, y)";
    pq "Q(x, y, z) :- Contacts(x, y, z)";
    pq "Q(x, y) :- Contacts(x, y, 'Intern')";
    pq "Q(x) :- Contacts(x, y, 'Boss')";
    pq "Q(x) :- Meetings(x, y), Contacts(y, e, p)";
    pq "Q() :- Unknown(u)";
  |]

(* The serving layer's composition of the compiled path: guarded labeling
   via the artifact, then the pre-labeled submit (Shard.label_query's exact
   shape, minus the cache). *)
let submit_compiled service artifact ~principal q =
  match
    Service.label_query_with service
      ~labeler:(fun ~budget q -> Artifact.label ~budget artifact q)
      q
  with
  | Ok label -> Service.submit_label service ~principal label
  | Error reason -> Service.refuse service ~principal reason

let make_fixed_service () =
  let pipeline = Pipeline.create fixed_views in
  let service = Service.create pipeline in
  register_all (fun ~principal ~partitions ->
      Service.register service ~principal ~partitions);
  (service, pipeline)

let test_decision_differential () =
  let rng = Random.State.make [| 0xD1FF |] in
  for _round = 1 to 60 do
    let si, _ = make_fixed_service () in
    let sc, pipeline = make_fixed_service () in
    let artifact = Artifact.compile pipeline in
    for _step = 1 to 1 + Random.State.int rng 15 do
      let principal = principals.(Random.State.int rng (Array.length principals)) in
      let q = fixed_queries.(Random.State.int rng (Array.length fixed_queries)) in
      let di = Service.submit si ~principal q in
      let dc = submit_compiled sc artifact ~principal q in
      if not (Monitor.decision_equal di dc) then
        Alcotest.failf "%s / %s: interpreted %a, compiled %a" principal
          (Cq.Query.to_string q) Monitor.pp_decision di Monitor.pp_decision dc
    done;
    check_bool "monitor states bit-identical" true (Service.snapshot si = Service.snapshot sc);
    check_int "no fallbacks on the standard views" 0 (Artifact.fallbacks artifact)
  done

(* --- fault injection: identical trip schedule --------------------------- *)

let outcome f = match f () with l -> Ok l | exception e -> Error (Printexc.to_string e)

let label_stages = [ Faults.Minimize; Faults.Dissect; Faults.Label ]
let all_faults = [ Faults.Exhaust_fuel; Faults.Expire_deadline; Faults.Raise "injected" ]

let fault_name stage fault =
  Format.asprintf "%a/%a" Faults.pp_stage stage Faults.pp_fault fault

let test_fault_differential () =
  let queries = [ fixed_queries.(0); fixed_queries.(4); fixed_queries.(6) ] in
  let pipeline = Pipeline.create fixed_views in
  List.iter
    (fun q ->
      List.iter
        (fun stage ->
          List.iter
            (fun fault ->
              let name = Printf.sprintf "%s @ %s" (Cq.Query.to_string q) (fault_name stage fault) in
              (* Cold: no memo involved. *)
              let cold = Artifact.compile pipeline in
              let expected =
                Faults.with_fault stage fault (fun () ->
                    outcome (fun () -> Pipeline.label pipeline q))
              in
              let got =
                Faults.with_fault stage fault (fun () ->
                    outcome (fun () -> Artifact.label cold q))
              in
              if got <> expected then Alcotest.failf "cold %s: outcomes differ" name;
              (* Warm: a query-memo hit must REPLAY the interpreter's trip
                 schedule (Minimize, Dissect, one Label per atom), not skip
                 it — else a fault schedule could tell the paths apart. *)
              let warm = Artifact.compile pipeline in
              ignore (Artifact.label warm q);
              let got_warm =
                Faults.with_fault stage fault (fun () ->
                    outcome (fun () -> Artifact.label warm q))
              in
              if got_warm <> expected then Alcotest.failf "warm %s: outcomes differ" name)
            all_faults)
        label_stages)
    queries

(* Service-level: under any labeling-stage fault the compiled serving path
   refuses exactly as the interpreted one, leaving the monitor untouched. *)
let test_fault_decisions () =
  List.iter
    (fun stage ->
      List.iter
        (fun fault ->
          let name = fault_name stage fault in
          let si, _ = make_fixed_service () in
          let sc, pipeline = make_fixed_service () in
          let artifact = Artifact.compile pipeline in
          (* Warm both paths first so the fault hits the memo-hit replay. *)
          let q = fixed_queries.(0) in
          ignore (Service.submit si ~principal:"crm-app" q);
          ignore (submit_compiled sc artifact ~principal:"crm-app" q);
          let before = Service.snapshot sc in
          let di, dc =
            Faults.with_fault stage fault (fun () ->
                ( Service.submit si ~principal:"crm-app" q,
                  submit_compiled sc artifact ~principal:"crm-app" q ))
          in
          if not (Monitor.decision_equal di dc) then
            Alcotest.failf "%s: interpreted %a, compiled %a" name Monitor.pp_decision di
              Monitor.pp_decision dc;
          (match dc with
          | Monitor.Refused _ -> ()
          | Monitor.Answered -> Alcotest.failf "%s: fault was answered" name);
          check_bool (name ^ ": refusal left monitor bit-identical") true
            (Service.snapshot sc = before))
        all_faults)
    label_stages

(* --- policy reload: fresh artifact, fresh caches, bumped version -------- *)

let policy : Policyfile.t =
  {
    Policyfile.views = [ v1; v2; v3 ];
    principals = [ ("calendar-app", [ ("default", [ "V2" ]) ]) ];
  }

let server_config =
  { Server.default_config with Server.domains = 1; cache_capacity = 256 }

let test_reload_recompiles () =
  let server = Server.create ~config:server_config (Pipeline.create [ v1; v2; v3 ]) in
  (match Policyfile.resolve policy with
  | Ok resolved ->
    List.iter
      (fun (principal, partitions) -> Server.register server ~principal ~partitions)
      resolved
  | Error e -> Alcotest.failf "resolve: %s" e);
  Server.start server;
  let q = pq "Q(x, y) :- Meetings(x, y)" in
  (* Refused under V2-only — and submitted twice so the label is sitting in
     both the label cache and the artifact's memo when the reload hits. *)
  check_bool "refused under old policy" true
    (Server.submit_sync server ~principal:"calendar-app" q <> Monitor.Answered);
  check_bool "refused again (warm)" true
    (Server.submit_sync server ~principal:"calendar-app" q <> Monitor.Answered);
  Server.drain server;
  let s0 = Server.compile_stats server in
  check_int "initial artifact version" 0 s0.Artifact.version;
  (* The repeat never re-labels: the interned key matched (intern hit) and
     the label came from the shard's cache. *)
  check_bool "repeat hit the hash-consed key" true (s0.Artifact.intern_hits > 0);
  check_int "labeled exactly once" 1 s0.Artifact.query_misses;
  (* Grant V1: the same query must flip to Answered, which requires the
     swapped-in artifact and a reset cache — a stale compiled label or a
     stale cache entry would keep refusing. *)
  let wider =
    { policy with Policyfile.principals = [ ("calendar-app", [ ("default", [ "V1" ]) ]) ] }
  in
  (match Server.reload server wider with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reload: %s" e);
  check_bool "answered under new policy" true
    (Server.submit_sync server ~principal:"calendar-app" q = Monitor.Answered);
  Server.drain server;
  let s1 = Server.compile_stats server in
  check_int "reload bumped the artifact version" 1 s1.Artifact.version;
  check_int "no fallbacks across the reload" 0 s1.Artifact.fallbacks;
  check_bool "fresh artifact started from empty memos" true
    (s1.Artifact.query_misses >= 1 && s1.Artifact.query_hits = 0);
  (* stats_json surfaces the compile block for operators. *)
  let stats = Server.stats_json server in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      if not (contains stats needle) then Alcotest.failf "stats_json is missing %S" needle)
    [ "\"compile\""; "\"fallbacks\""; "\"intern_entries\""; "\"diagram_nodes\"" ];
  Server.stop server

(* --- the fallback escape: outside-fragment queries are counted ---------- *)

let test_fallback_counted () =
  let n = Pattern.max_arity + 1 in
  let vars = List.init n (fun i -> Printf.sprintf "x%d" i) in
  let args = String.concat ", " vars in
  let wide_view = Sview.of_string (Printf.sprintf "W(%s) :- Wide(%s)" args args) in
  let pipeline = Pipeline.create [ wide_view; v1 ] in
  let artifact = Artifact.compile pipeline in
  let q = pq (Printf.sprintf "Q(x0) :- Wide(%s)" args) in
  (* Outside the fragment: escapes to the interpreter — with the identical
     label, and counted, never silent. *)
  check_bool "fallback label ≡ interpreted" true
    (labels_equal (Artifact.label artifact q) (Pipeline.label pipeline q));
  check_bool "fallback counted" true (Artifact.fallbacks artifact > 0);
  (* In-fragment queries on the same artifact still compile. *)
  let q_ok = pq "Q(x, y) :- Meetings(x, y)" in
  let before = Artifact.fallbacks artifact in
  check_bool "in-fragment label ≡ interpreted" true
    (labels_equal (Artifact.label artifact q_ok) (Pipeline.label pipeline q_ok));
  check_int "no new fallbacks" before (Artifact.fallbacks artifact);
  (* The over-wide view's group is dropped (a matching query cannot encode
     anyway), visible in stats. *)
  let s = Artifact.stats artifact in
  check_int "only the narrow relation compiled" 1 s.Artifact.groups

(* --- interner: bounded, monotone, flush-safe ---------------------------- *)

let test_intern_flush () =
  let t = Intern.create ~capacity:4 in
  let ids = List.init 10 (fun i -> Intern.intern t (Printf.sprintf "k%d" i)) in
  (* Monotone dense ids, never reused. *)
  List.iteri (fun i id -> check_int "dense id" i id) ids;
  check_bool "flushed at capacity" true (Intern.flushes t > 0);
  check_bool "bounded" true (Intern.length t <= Intern.capacity t);
  (* A key re-interned after a flush gets a FRESH id — a stale id can never
     alias a live one, which is what makes interned ints safe cache keys. *)
  let id' = Intern.intern t "k0" in
  check_bool "stale id never re-issued" true (id' > List.nth ids 9);
  check_int "hit returns the same id" id' (Intern.intern t "k0");
  Alcotest.check_raises "capacity validated"
    (Invalid_argument "Intern.create: capacity must be >= 1") (fun () ->
      ignore (Intern.create ~capacity:0))

let test_intern_query_semantics () =
  let pipeline = Pipeline.create fixed_views in
  let artifact = Artifact.compile pipeline in
  (* The query's own name never reaches the key: renaming Q is free. *)
  let body = [ Cq.Atom.make "Meetings" [ Cq.Term.Var "x"; Cq.Term.Var "y" ] ] in
  let head = [ Cq.Term.Var "x" ] in
  let qa = Cq.Query.make ~name:"A" ~head ~body () in
  let qb = Cq.Query.make ~name:"B" ~head ~body () in
  check_int "name-insensitive" (Artifact.intern_query artifact qa)
    (Artifact.intern_query artifact qb);
  (* Different structure, different id. *)
  let qc = Cq.Query.make ~name:"A" ~head:[] ~body () in
  check_bool "structure-sensitive" true
    (Artifact.intern_query artifact qc <> Artifact.intern_query artifact qa)

(* Labels survive interner and memo flushes: a tiny artifact churns its
   tables constantly and must still be bit-identical to the interpreter. *)
let test_tiny_artifact_churn () =
  let pipeline = Pipeline.create fixed_views in
  let artifact = Artifact.compile ~intern_capacity:3 ~memo_capacity:3 pipeline in
  let queries =
    Array.init 12 (fun i ->
        pq (Printf.sprintf "Q(x) :- Meetings(x, y), Contacts(y, e%d, p)" i))
  in
  for _pass = 1 to 3 do
    Array.iter
      (fun q ->
        check_bool "churned label ≡ interpreted" true
          (labels_equal (Artifact.label artifact q) (Pipeline.label pipeline q)))
      queries
  done;
  let s = Artifact.stats artifact in
  check_bool "interner actually flushed" true (s.Artifact.intern_flushes > 0);
  check_int "still no fallbacks" 0 s.Artifact.fallbacks

let () =
  Alcotest.run "disclosure-compile"
    [
      ( "pattern",
        [ Alcotest.test_case "canonical position codes" `Quick test_pattern_encoding ] );
      ("matcher", [ matcher_equiv ]);
      ("diagram", [ diagram_equiv ]);
      ("artifact", [ artifact_label_equiv; artifact_atom_equiv ]);
      ( "decisions",
        [
          Alcotest.test_case "compiled serving path ≡ interpreted submit" `Quick
            test_decision_differential;
        ] );
      ( "faults",
        [
          Alcotest.test_case "identical outcomes at every labeling stage" `Quick
            test_fault_differential;
          Alcotest.test_case "identical refusals through the service" `Quick
            test_fault_decisions;
        ] );
      ( "reload",
        [ Alcotest.test_case "reload recompiles and invalidates" `Quick test_reload_recompiles ] );
      ( "fallback",
        [ Alcotest.test_case "outside-fragment escape is counted" `Quick test_fallback_counted ] );
      ( "intern",
        [
          Alcotest.test_case "bounded monotone interner" `Quick test_intern_flush;
          Alcotest.test_case "query key semantics" `Quick test_intern_query_semantics;
          Alcotest.test_case "tiny artifact churn stays bit-identical" `Quick
            test_tiny_artifact_churn;
        ] );
    ]
