(* Tests for the tagged (Section 5) query representation and security views. *)

module Tagged = Disclosure.Tagged
module Sview = Disclosure.Sview
module Query = Cq.Query

let pq = Helpers.pq
let tatom = Helpers.tatom

let test_of_query_tags () =
  let atoms = Tagged.of_query (pq "Q2(x) :- M(x, y), C(y, w, 'Intern')") in
  Helpers.check_int "two atoms" 2 (List.length atoms);
  match atoms with
  | [ m; c ] ->
    Alcotest.check
      Alcotest.(list (pair string bool))
      "M vars: x distinguished, y existential"
      [ ("x", true); ("y", false) ]
      (List.map (fun (v, k) -> (v, k = Tagged.Distinguished)) (Tagged.atom_vars m));
    Alcotest.check
      Alcotest.(list (pair string bool))
      "C vars all existential"
      [ ("y", false); ("w", false) ]
      (List.map (fun (v, k) -> (v, k = Tagged.Distinguished)) (Tagged.atom_vars c))
  | _ -> Alcotest.fail "expected two atoms"

let test_roundtrip () =
  let q = pq "Q(x, z) :- R(x, y), S(y, z)" in
  let q' = Tagged.to_query (Tagged.of_query q) in
  Helpers.check_bool "roundtrip equivalent" true (Cq.Containment.equivalent q q')

let test_head_order_identified () =
  (* V1 and V1' from Section 3.1 reveal the same information; the tagged form
     makes them identical. *)
  let a = tatom "V1(x, y) :- Meetings(x, y)" in
  let b = tatom "V1(y, x) :- Meetings(x, y)" in
  Alcotest.check Helpers.tagged_iso_testable "permuted heads identified" a b

let test_canonicalize () =
  let a = tatom "V(p, q) :- R(p, s, q)" in
  let b = tatom "V(m, n) :- R(m, k, n)" in
  Alcotest.check Helpers.tagged_atom_testable "same canonical form"
    (Tagged.canonicalize a) (Tagged.canonicalize b);
  Helpers.check_bool "iso equivalent" true (Tagged.iso_equivalent a b)

let test_iso_distinguishes_kinds () =
  let dist = tatom "V(x) :- R(x)" in
  let exist = tatom "V() :- R(x)" in
  Helpers.check_bool "kind matters" false (Tagged.iso_equivalent dist exist)

let test_iso_distinguishes_equality_pattern () =
  let diag = tatom "V() :- R(x, x)" in
  let free = tatom "V() :- R(x, y)" in
  Helpers.check_bool "equality pattern matters" false (Tagged.iso_equivalent diag free)

let test_well_formed () =
  let ok = tatom "V(x) :- R(x, y)" in
  Helpers.check_bool "well formed" true (Tagged.well_formed ok);
  let bad =
    {
      Tagged.pred = "R";
      args = [ Tagged.Var ("x", Tagged.Distinguished); Tagged.Var ("x", Tagged.Existential) ];
    }
  in
  Helpers.check_bool "mixed kinds rejected" false (Tagged.well_formed bad)

let test_atom_of_query_multi () =
  Helpers.check_bool "multi-atom rejected" true
    (Result.is_error (Tagged.atom_of_query (pq "Q(x) :- R(x), S(x)")))

let test_sview_basics () =
  let v = Helpers.sview "V2(x) :- Meetings(x, y)" in
  Helpers.check_string "name" "V2" v.Sview.name;
  Helpers.check_string "relation" "Meetings" (Sview.relation v);
  Alcotest.check Alcotest.(list string) "head vars" [ "x" ] (Sview.head_vars v);
  Helpers.check_int "arity" 1 (Sview.arity v)

let test_sview_eval () =
  let v = Helpers.sview "V2(x) :- Meetings(x, y)" in
  Helpers.check_int "time slots" 3 (Relational.Relation.cardinal (Sview.eval Helpers.fig1_db v))

let test_sview_rejects_joins () =
  Helpers.check_bool "join view rejected" true
    (try
       ignore (Helpers.sview "V(x) :- R(x, y), S(y)");
       false
     with Sview.Invalid_view _ -> true)

let test_sview_equivalent () =
  let a = Helpers.sview "A(x, y) :- M(x, y)" in
  let b = Helpers.sview "B(y, x) :- M(x, y)" in
  Helpers.check_bool "information equivalence" true (Sview.equivalent a b);
  Helpers.check_bool "structural difference" false (Sview.equal a b)

let test_pp_marks_existentials () =
  Helpers.check_string "existential printed with ?" "Meetings(x, y?)"
    (Tagged.atom_to_string (tatom "V2(x) :- Meetings(x, y)"))

let suite =
  [
    Alcotest.test_case "of_query tags by head" `Quick test_of_query_tags;
    Alcotest.test_case "roundtrip to query" `Quick test_roundtrip;
    Alcotest.test_case "head order identified" `Quick test_head_order_identified;
    Alcotest.test_case "canonicalization" `Quick test_canonicalize;
    Alcotest.test_case "iso distinguishes kinds" `Quick test_iso_distinguishes_kinds;
    Alcotest.test_case "iso distinguishes equality" `Quick test_iso_distinguishes_equality_pattern;
    Alcotest.test_case "well-formedness" `Quick test_well_formed;
    Alcotest.test_case "atom_of_query multi-atom" `Quick test_atom_of_query_multi;
    Alcotest.test_case "security view basics" `Quick test_sview_basics;
    Alcotest.test_case "security view eval" `Quick test_sview_eval;
    Alcotest.test_case "security view rejects joins" `Quick test_sview_rejects_joins;
    Alcotest.test_case "security view equivalence" `Quick test_sview_equivalent;
    Alcotest.test_case "printer marks existentials" `Quick test_pp_marks_existentials;
  ]
