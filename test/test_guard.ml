(* Resource governance: budgets, admission caps, and the fail-closed
   boundary, including property tests over adversarial queries (long chain
   joins, repeated relation atoms, self-join towers) — the worst cases for
   the NP-complete homomorphism search under the labeler. *)

module Guard = Disclosure.Guard
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Order = Disclosure.Order
module Monitor = Disclosure.Monitor
module Service = Disclosure.Service

let sview = Helpers.sview

(* Views over the property-test schema (R/3, S/2), full and projected, so
   adversarial queries label non-trivially. *)
let views =
  [
    sview "VR3(x, y, z) :- R(x, y, z)";
    sview "VR1(x) :- R(x, y, z)";
    sview "VS2(x, y) :- S(x, y)";
    sview "VS1(x) :- S(x, y)";
  ]

let pipeline = Pipeline.create views

let test_limits_validation () =
  Alcotest.check_raises "zero fuel" (Invalid_argument "Guard.limits: fuel must be positive")
    (fun () -> ignore (Guard.limits ~fuel:0 ()));
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Guard.limits: deadline must be non-negative") (fun () ->
      ignore (Guard.limits ~deadline:(-1.0) ()));
  Alcotest.check_raises "zero max_atoms"
    (Invalid_argument "Guard.limits: max_atoms must be positive") (fun () ->
      ignore (Guard.limits ~max_atoms:0 ()))

let test_budget_deadline () =
  let b = Cq.Budget.create ~deadline:0.0 () in
  Alcotest.check_raises "deadline expired"
    (Cq.Budget.Exhausted Cq.Budget.Deadline) (fun () -> Cq.Budget.check_deadline b)

let test_budget_fuel () =
  let b = Cq.Budget.create ~fuel:3 () in
  Cq.Budget.tick b;
  Cq.Budget.tick b;
  Cq.Budget.tick b;
  Alcotest.check_raises "fuel exhausted" (Cq.Budget.Exhausted Cq.Budget.Fuel) (fun () ->
      Cq.Budget.tick b)

let test_run_fail_closed () =
  (* An arbitrary exception inside the guarded region becomes a typed fault
     refusal, never an escape. *)
  (match Guard.run Guard.no_limits (fun _ -> failwith "boom") with
  | Error (Guard.Fault msg) ->
    Helpers.check_bool "fault message" true
      (String.length msg > 0 && String.sub msg 0 7 = "Failure")
  | Ok () | Error _ -> Alcotest.fail "expected a fault refusal");
  match Guard.run Guard.no_limits (fun _ -> raise (Guard.Refuse (Guard.Malformed "x"))) with
  | Error (Guard.Malformed "x") -> ()
  | Ok () | Error _ -> Alcotest.fail "expected the raised refusal"

let tower n =
  let v i = Cq.Term.Var (Printf.sprintf "a%d" i) in
  let body =
    List.init n (fun i -> Cq.Atom.make "R" [ v i; v ((i + 1) mod n); v ((i + 1) mod n) ])
  in
  Cq.Query.make ~name:"Q" ~head:[] ~body ()

let test_fuel_refusal () =
  (* A 7-atom self-join tower under 10 steps of fuel cannot finish folding. *)
  match
    Guard.run (Guard.limits ~fuel:10 ()) (fun budget ->
        Pipeline.label ~budget pipeline (tower 7))
  with
  | Error (Guard.Resource Guard.Fuel) -> ()
  | Ok _ -> Alcotest.fail "10 fuel sufficed for a 7-atom tower"
  | Error r -> Alcotest.failf "unexpected refusal: %a" Guard.pp_refusal r

let test_service_admission () =
  let service =
    Service.create ~limits:(Guard.limits ~max_atoms:2 ()) pipeline
  in
  Service.register_stateless service ~principal:"app" ~views;
  let before = Service.snapshot service in
  (match Service.submit service ~principal:"app" (tower 3) with
  | Monitor.Refused (Guard.Resource (Guard.Query_too_large { atoms = 3; max_atoms = 2 })) ->
    ()
  | d -> Alcotest.failf "expected admission refusal, got %a" Monitor.pp_decision d);
  (* Admission refusals leave the monitor bit-identical: not even a counter. *)
  Helpers.check_bool "state untouched" true (before = Service.snapshot service);
  Helpers.check_bool "small query still answered" true
    (Monitor.is_answered
       (Service.submit service ~principal:"app" (Helpers.pq "Q(x) :- R(x, y, z)")))

let test_service_label_width () =
  let service =
    Service.create ~limits:(Guard.limits ~max_label_width:1 ()) pipeline
  in
  Service.register_stateless service ~principal:"app" ~views;
  (* R ⨯ S needs one label atom per relation: width 2 > 1. *)
  match
    Service.submit service ~principal:"app"
      (Helpers.pq "Q(x, u) :- R(x, y, z), S(u, v)")
  with
  | Monitor.Refused (Guard.Resource (Guard.Label_too_wide { width = 2; max_width = 1 }))
    -> ()
  | d -> Alcotest.failf "expected width refusal, got %a" Monitor.pp_decision d

let test_refusal_tags_roundtrip () =
  List.iter
    (fun r ->
      match Guard.refusal_of_tag (Guard.refusal_to_tag r) with
      | Some r' ->
        Helpers.check_bool (Guard.refusal_to_tag r) true
          (Guard.refusal_to_tag r = Guard.refusal_to_tag r')
      | None -> Alcotest.failf "tag %s does not round-trip" (Guard.refusal_to_tag r))
    [
      Guard.Policy;
      Guard.Resource Guard.Fuel;
      Guard.Resource Guard.Deadline;
      Guard.Resource (Guard.Query_too_large { atoms = 5; max_atoms = 2 });
      Guard.Resource (Guard.Label_too_wide { width = 9; max_width = 4 });
      Guard.Malformed "bad";
      Guard.Fault "oops";
    ]

(* --- properties over adversarial queries ----------------------------- *)

let prop_n count name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* Fail-closed: under a tight budget the guarded labeler either completes or
   refuses with a resource reason — it never faults and never escapes. *)
let guarded_completes_or_refuses =
  prop_n 300 "guarded labeling completes or refuses cleanly"
    Generators.arbitrary_adversarial_query (fun q ->
      match
        Guard.run (Guard.limits ~fuel:2_000 ~deadline:5.0 ()) (fun budget ->
            Pipeline.label ~budget pipeline q)
      with
      | Ok _ | Error (Guard.Resource (Guard.Fuel | Guard.Deadline)) -> true
      | Error _ -> false)

(* A generous budget changes nothing: the guarded fast path computes exactly
   the unguarded label. *)
let guarded_label_matches_unguarded =
  prop_n 200 "guarded label = unguarded label" Generators.arbitrary_adversarial_query
    (fun q ->
      match
        Guard.run (Guard.limits ~fuel:50_000_000 ()) (fun budget ->
            Pipeline.label ~budget pipeline q)
      with
      | Ok l -> l = Pipeline.label pipeline q
      | Error _ -> false)

(* The three labeler variants agree whenever all complete (adversarial
   edition of the Figure 5 agreement invariant). *)
let variants_agree_on_adversarial =
  prop_n 150 "label/label_hashed/label_baseline agree"
    Generators.arbitrary_adversarial_query (fun q ->
      let budget () = Guard.budget (Guard.limits ~fuel:50_000_000 ()) in
      let bitvec = Pipeline.label ~budget:(budget ()) pipeline q in
      let hashed = Pipeline.label_hashed ~budget:(budget ()) pipeline q in
      let baseline = Pipeline.label_baseline ~budget:(budget ()) pipeline q in
      match hashed, baseline with
      | Some h, Some b ->
        Order.equiv Order.rewriting h b && not (Label.is_top bitvec)
      | None, None -> Label.is_top bitvec
      | _ -> false)

(* Fuel monotonicity: anything that completes on f steps completes with the
   same result on any larger budget. *)
let fuel_monotone =
  prop_n 150 "more fuel never changes a completed result"
    Generators.arbitrary_adversarial_query (fun q ->
      let run fuel =
        Guard.run (Guard.limits ~fuel ()) (fun budget ->
            Pipeline.label ~budget pipeline q)
      in
      match run 3_000 with
      | Error _ -> QCheck.assume_fail ()
      | Ok l -> (
        match run 30_000 with
        | Ok l' -> l = l'
        | Error _ -> false))

let suite =
  [
    Alcotest.test_case "limits validation" `Quick test_limits_validation;
    Alcotest.test_case "budget deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget fuel" `Quick test_budget_fuel;
    Alcotest.test_case "run is fail-closed" `Quick test_run_fail_closed;
    Alcotest.test_case "fuel refusal on tower" `Quick test_fuel_refusal;
    Alcotest.test_case "admission cap (max_atoms)" `Quick test_service_admission;
    Alcotest.test_case "admission cap (label width)" `Quick test_service_label_width;
    Alcotest.test_case "refusal tags round-trip" `Quick test_refusal_tags_roundtrip;
    guarded_completes_or_refuses;
    guarded_label_matches_unguarded;
    variants_agree_on_adversarial;
    fuel_monotone;
  ]
