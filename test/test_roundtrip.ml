(* Printer/parser roundtrip properties for every surface syntax in the
   system: values, conjunctive queries, FQL, Graph API requests, and
   serialized labels. *)

module Gen = QCheck.Gen
module Value = Relational.Value

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb f)

(* --- Values ----------------------------------------------------------- *)

let gen_value =
  Gen.oneof
    [
      Gen.map (fun i -> Value.Int i) Gen.small_signed_int;
      Gen.map (fun s -> Value.Str s) (Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_range 1 8));
      Gen.map (fun b -> Value.Bool b) Gen.bool;
    ]

let value_roundtrip =
  prop "value to_string/of_string roundtrip"
    (QCheck.make ~print:Value.to_string gen_value)
    (fun v -> Value.equal v (Value.of_string (Value.to_string v)))

(* --- Conjunctive queries ------------------------------------------------ *)

let query_roundtrip =
  prop "query pp/parse roundtrip" Generators.arbitrary_query (fun q ->
      match Cq.Parser.query (Cq.Query.to_string q) with
      | Ok q' -> Cq.Query.equal q q'
      | Error _ -> false)

(* --- FQL ---------------------------------------------------------------- *)

let gen_field = Gen.oneofl [ "uid"; "name"; "birthday"; "languages"; "friend_uid" ]

let gen_table = Gen.oneofl [ "user"; "friend"; "like" ]

let gen_fql_literal =
  Gen.oneof
    [
      Gen.map (fun i -> Value.Int i) (Gen.int_range 0 99);
      Gen.map (fun s -> Value.Str s) (Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_range 1 6));
      Gen.map (fun b -> Value.Bool b) Gen.bool;
    ]

let rec gen_select depth =
  let open Gen in
  let gen_cond =
    if depth = 0 then
      oneof
        [
          map2 (fun f v -> Fb_api.Fql.Eq (f, v)) gen_field gen_fql_literal;
          map (fun f -> Fb_api.Fql.Eq_me f) gen_field;
        ]
    else
      frequency
        [
          (3, map2 (fun f v -> Fb_api.Fql.Eq (f, v)) gen_field gen_fql_literal);
          (2, map (fun f -> Fb_api.Fql.Eq_me f) gen_field);
          ( 1,
            map2
              (fun f sub -> Fb_api.Fql.In_subquery (f, sub))
              gen_field (gen_select (depth - 1)) );
        ]
  in
  let* n_fields = int_range 1 3 in
  let* fields = list_repeat n_fields gen_field in
  let* table = gen_table in
  let* n_conds = int_range 0 2 in
  let* where = list_repeat n_conds gen_cond in
  return { Fb_api.Fql.fields; table; where }

let fql_roundtrip =
  prop "FQL to_string/parse roundtrip"
    (QCheck.make ~print:Fb_api.Fql.to_string (gen_select 2))
    (fun sel ->
      match Fb_api.Fql.parse (Fb_api.Fql.to_string sel) with
      | Ok sel' -> sel = sel'
      | Error _ -> false)

(* --- Graph API ----------------------------------------------------------- *)

let gen_graph_request =
  let open Gen in
  let* node =
    oneof
      [
        return Fb_api.Graph_api.Me;
        map
          (fun s -> Fb_api.Graph_api.User_id s)
          (string_size ~gen:(char_range '0' '9') (int_range 1 6));
      ]
  in
  let* connection =
    oneof
      [
        return None;
        map Option.some
          (oneofl [ "friends"; "likes"; "photos"; "albums"; "events"; "checkins" ]);
      ]
  in
  let* n_fields = int_range 0 3 in
  let* fields = list_repeat n_fields (oneofl [ "uid"; "name"; "birthday"; "page_id" ]) in
  return { Fb_api.Graph_api.node; connection; fields }

let graph_roundtrip =
  prop "Graph API to_string/parse roundtrip"
    (QCheck.make ~print:Fb_api.Graph_api.to_string gen_graph_request)
    (fun t ->
      match Fb_api.Graph_api.parse (Fb_api.Graph_api.to_string t) with
      | Ok t' -> t = t'
      | Error _ -> false)

(* --- Labels ---------------------------------------------------------------- *)

let props_pipeline =
  Disclosure.Pipeline.create
    [
      Helpers.sview "W1(a, b, c) :- R(a, b, c)";
      Helpers.sview "W2(a, b) :- R(a, b, c)";
      Helpers.sview "W5(a, b) :- S(a, b)";
    ]

let label_roundtrip =
  prop "label encode/decode roundtrip" Generators.arbitrary_query (fun q ->
      let l = Disclosure.Pipeline.label props_pipeline q in
      match Disclosure.Label.decode (Disclosure.Label.encode l) with
      | Ok l' -> l = l'
      | Error _ -> false)

let suite =
  [ value_roundtrip; query_roundtrip; fql_roundtrip; graph_roundtrip; label_roundtrip ]
