(* Tests for the networked front-end (lib/net). Its own executable, like the
   server suite: these tests bind real sockets and spawn accept/connection
   domains, plus the fault matrix arms global hooks.

   The headline properties:
   - end-to-end equivalence: decisions over a real socket are bit-identical
     to the in-process path — same decision sequence, same monitor states,
     same journal bytes for the same history;
   - fail-closed robustness: garbage, torn, oversized, bit-flipped and
     late frames produce typed protocol errors and a closed connection —
     never a crash, never a hang, never a journaled decision;
   - overload over the wire is the same fail-closed [Refused Overload] it
     is in-process, with monitor and journal untouched by the shed query. *)

module Monitor = Disclosure.Monitor
module Guard = Disclosure.Guard
module Pipeline = Disclosure.Pipeline
module Sview = Disclosure.Sview
module Faults = Disclosure.Faults
module Frame = Net.Frame
module Codec = Net.Codec
module Errors = Net.Errors

let domains = 2
let pq = Cq.Parser.query_exn

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"

let pipeline () = Pipeline.create [ v1; v2; v3 ]

let register_all server =
  Server.register server ~principal:"calendar-app" ~partitions:[ ("default", [ v2 ]) ];
  Server.register server ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  Server.register server ~principal:"hr-app" ~partitions:[ ("default", [ v3 ]) ]

let make_server ?journal ?trace ?(mailbox_capacity = 1024) ?(cache_capacity = 256)
    ?(group_commit = false) () =
  let server =
    Server.create ?journal ?trace
      ~config:
        { Server.domains; mailbox_capacity; cache_capacity; checkpoint_every = 0;
          segment_bytes = 0; drain = Server.default_config.Server.drain; group_commit;
          resident = None }
      (pipeline ())
  in
  register_all server;
  server

(* A deterministic mixed history: answers, policy refusals, malformed. *)
let history =
  [
    ("calendar-app", "Q(x) :- Meetings(x, y)");
    ("crm-app", "Q(x, y) :- Meetings(x, y)");
    ("hr-app", "Q(x, y, z) :- Contacts(x, y, z)");
    ("calendar-app", "Q(x, y) :- Meetings(x, y)");
    ("crm-app", "Q(x) :- Contacts(x, y, z)");
    ("hr-app", "Q(x) :- Meetings(x, y)");
    ("calendar-app", "Q(a) :- Meetings(a, b)");
    ("crm-app", "Q(x) :- Meetings(x, y), Contacts(y, e, p)");
    ("hr-app", "Q(x) :- Contacts(x, y, z)");
    ("calendar-app", "Q(y) :- Meetings(x, y)");
  ]

let with_socket f =
  let path = Filename.temp_file "disclosure-net" ".sock" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Net.Addr.Unix_socket path))

let with_tmp_base f =
  let base = Filename.temp_file "disclosure-net" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      let rm f = try Sys.remove f with Sys_error _ -> () in
      rm base;
      for i = 0 to domains - 1 do
        let shard = Printf.sprintf "%s.shard%d" base i in
        rm shard;
        rm (shard ^ ".ckpt")
      done)
    (fun () -> f base)

let read_file path =
  if not (Sys.file_exists path) then ""
  else In_channel.with_open_bin path In_channel.input_all

(* --- frame codec: pure torture ----------------------------------------- *)

let sample_payloads =
  [ ""; "x"; "{\"op\":\"ping\"}"; String.make 300 'q'; "\x00\xff\ttab\nnewline" ]

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let frame = Frame.encode payload in
      match Frame.decode frame with
      | Frame.Frame { payload = p; consumed } ->
        check_bool "payload survives" true (String.equal p payload);
        check_int "whole frame consumed" (String.length frame) consumed
      | Frame.Need_more _ | Frame.Corrupt _ -> Alcotest.fail "valid frame must decode")
    sample_payloads;
  (* Two frames back to back: the first decode consumes exactly one. *)
  let a = Frame.encode "first" and b = Frame.encode "second" in
  match Frame.decode (a ^ b) with
  | Frame.Frame { payload; consumed } ->
    check_bool "first of two" true (String.equal payload "first");
    check_int "consumed only the first" (String.length a) consumed
  | _ -> Alcotest.fail "concatenated frames must decode one at a time"

(* Every proper prefix of a valid frame is [Need_more], never an exception,
   never a frame, never corrupt — the receiving loop can always keep
   reading. Mirrors the journal's truncate-at-every-offset torture. *)
let test_frame_torn_every_offset () =
  List.iter
    (fun payload ->
      let frame = Frame.encode payload in
      for cut = 0 to String.length frame - 1 do
        match Frame.decode (String.sub frame 0 cut) with
        | Frame.Need_more n ->
          check_bool "needs a positive number of bytes" true (n > 0);
          check_bool "never asks beyond the frame" true (n <= String.length frame - cut)
        | Frame.Frame _ -> Alcotest.failf "prefix of %d bytes decoded as a frame" cut
        | Frame.Corrupt e ->
          Alcotest.failf "prefix of %d bytes reported corrupt: %s" cut (Errors.to_string e)
      done)
    sample_payloads

(* Every single-byte corruption of a valid frame is detected: the decoder
   reports [Corrupt] or keeps waiting ([Need_more], when the flip enlarges
   the declared length) — it never yields a frame, and never raises. *)
let test_frame_flip_every_byte () =
  List.iter
    (fun payload ->
      let frame = Frame.encode payload in
      for i = 0 to String.length frame - 1 do
        let flipped = Bytes.of_string frame in
        Bytes.set flipped i (Char.chr (Char.code frame.[i] lxor 0x40));
        match Frame.decode (Bytes.to_string flipped) with
        | Frame.Corrupt _ | Frame.Need_more _ -> ()
        | Frame.Frame _ -> Alcotest.failf "flip at byte %d went undetected" i
      done)
    sample_payloads

let test_frame_oversized_rejected_early () =
  (* A hostile header declaring 2 GiB must be rejected from the 13 header
     bytes alone — before any payload is buffered. *)
  let b = Buffer.create 13 in
  Buffer.add_string b Frame.magic;
  Buffer.add_char b (Char.chr Frame.version);
  List.iter (Buffer.add_char b) [ '\x7f'; '\xff'; '\xff'; '\xff' ];
  List.iter (Buffer.add_char b) [ '\x00'; '\x00'; '\x00'; '\x00' ];
  (match Frame.decode (Buffer.contents b) with
  | Frame.Corrupt { Errors.kind = Errors.Oversized; _ } -> ()
  | _ -> Alcotest.fail "oversized declared length must be corrupt at the header");
  (* And a length just over a custom cap, likewise. *)
  let frame = Frame.encode (String.make 100 'x') in
  match Frame.decode ~max_payload:99 frame with
  | Frame.Corrupt { Errors.kind = Errors.Oversized; _ } -> ()
  | _ -> Alcotest.fail "cap must apply"

let test_frame_fuzz_never_raises () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:2000 ~name:"Frame.decode is total"
       QCheck.(string_of_size Gen.(0 -- 200))
       (fun s ->
         (match Frame.decode s with
         | Frame.Frame { consumed; _ } -> consumed <= String.length s
         | Frame.Need_more n -> n > 0
         | Frame.Corrupt _ -> true)));
  (* Garbage appended to a valid frame: the first frame still decodes. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"valid frame survives trailing garbage"
       QCheck.(string_of_size Gen.(0 -- 50))
       (fun garbage ->
         let frame = Frame.encode "{\"op\":\"stats\"}" in
         match Frame.decode (frame ^ garbage) with
         | Frame.Frame { payload; consumed } ->
           String.equal payload "{\"op\":\"stats\"}" && consumed = String.length frame
         | _ -> false))

(* --- payload codec ------------------------------------------------------ *)

let all_error_kinds =
  [
    Errors.Bad_magic; Errors.Bad_version; Errors.Oversized; Errors.Crc_mismatch;
    Errors.Torn; Errors.Timeout; Errors.Bad_json; Errors.Bad_request;
    Errors.Unknown_principal; Errors.Busy; Errors.Shutting_down; Errors.Fault;
  ]

let test_error_tags_roundtrip () =
  List.iter
    (fun kind ->
      match Errors.kind_of_tag (Errors.kind_to_tag kind) with
      | Some k -> check_bool "tag roundtrips" true (k = kind)
      | None -> Alcotest.failf "tag %s does not roundtrip" (Errors.kind_to_tag kind))
    all_error_kinds;
  check_bool "unknown tag refused" true (Errors.kind_of_tag "no-such-tag" = None)

let test_codec_roundtrip () =
  let requests =
    [
      Codec.Ping; Codec.Stats;
      Codec.Query { principal = "crm-app"; query = "Q(x) :- Meetings(x, y)"; trace = None };
      Codec.Query { principal = "weird \"name\"\t"; query = ""; trace = None };
    ]
  in
  List.iter
    (fun req ->
      match Codec.decode_request (Codec.encode_request req) with
      | Ok req' -> check_bool "request roundtrips" true (req = req')
      | Error e -> Alcotest.fail (Errors.to_string e))
    requests;
  let responses =
    Codec.Pong
    :: Codec.Decision Monitor.Answered
    :: Codec.Stats_doc (Obs.Json.Obj [ ("uptime_s", Obs.Json.Num 1.5) ])
    :: List.map (fun k -> Codec.Error (Errors.v k "detail")) all_error_kinds
    @ List.map
        (fun r -> Codec.Decision (Monitor.Refused r))
        [ Guard.Policy; Guard.Overload; Guard.Resource Guard.Fuel; Guard.Resource Guard.Deadline ]
  in
  List.iter
    (fun resp ->
      match Codec.decode_response (Codec.encode_response resp) with
      | Ok resp' -> check_bool "response roundtrips" true (resp = resp')
      | Error msg -> Alcotest.fail msg)
    responses

let test_codec_rejects_malformed () =
  (match Codec.decode_request "not json at all {" with
  | Error { Errors.kind = Errors.Bad_json; _ } -> ()
  | _ -> Alcotest.fail "non-JSON payload must be bad-json");
  List.iter
    (fun payload ->
      match Codec.decode_request payload with
      | Error { Errors.kind = Errors.Bad_request; _ } -> ()
      | Error e -> Alcotest.failf "expected bad-request, got %s" (Errors.to_string e)
      | Ok _ -> Alcotest.failf "payload %S must not decode" payload)
    [
      "{}"; "{\"op\":\"launch-missiles\"}"; "{\"op\":42}";
      "{\"op\":\"query\"}"; "{\"op\":\"query\",\"principal\":\"p\"}";
      "{\"op\":\"query\",\"principal\":7,\"query\":\"Q\"}";
    ];
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:1000 ~name:"Codec.decode_request is total"
       QCheck.(string_of_size Gen.(0 -- 120))
       (fun s ->
         match Codec.decode_request s with Ok _ -> true | Error _ -> true))

let test_addr_parse () =
  (match Net.Addr.of_string "unix:/tmp/x.sock" with
  | Ok (Net.Addr.Unix_socket "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix addr");
  (match Net.Addr.of_string "tcp:127.0.0.1:8443" with
  | Ok (Net.Addr.Tcp ("127.0.0.1", 8443)) -> ()
  | _ -> Alcotest.fail "tcp addr");
  List.iter
    (fun s ->
      match Net.Addr.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "address %S must not parse" s)
    [ ""; "unix:"; "tcp:"; "tcp:nohost"; "tcp:host:notaport"; "tcp:host:99999"; "/tmp/x" ];
  List.iter
    (fun a ->
      check_bool "addr roundtrips" true (Net.Addr.of_string (Net.Addr.to_string a) = Ok a))
    [ Net.Addr.Unix_socket "/run/d.sock"; Net.Addr.Tcp ("::1-ish-host", 0) ]

(* --- end-to-end over a real socket -------------------------------------- *)

let run_wire addr pairs =
  Net.Client.with_connection addr (fun c ->
      List.map
        (fun (principal, q) ->
          match Net.Client.query_string c ~principal q with
          | Ok d -> d
          | Error e -> Alcotest.failf "wire error for %s: %s" principal (Errors.to_string e))
        pairs)

(* The acceptance criterion: a history through listener + client over a real
   Unix socket yields the same decisions, the same monitor states, and the
   same journal bytes as the in-process path. *)
let test_e2e_bit_identical_journal () =
  with_tmp_base (fun base_wire ->
      with_tmp_base (fun base_proc ->
          with_socket (fun addr ->
              let server = make_server ~journal:base_wire () in
              Server.start server;
              let listener = Net.Listener.create ~server addr in
              let wire_decisions = run_wire addr history in
              Net.Listener.stop listener;
              Server.drain server;
              let wire_snapshot = Server.snapshot server in
              Server.stop server;
              let server' = make_server ~journal:base_proc () in
              Server.start server';
              let proc_decisions =
                List.map
                  (fun (principal, q) -> Server.submit_sync server' ~principal (pq q))
                  history
              in
              Server.drain server';
              let proc_snapshot = Server.snapshot server' in
              Server.stop server';
              check_bool "decision sequences identical" true
                (List.for_all2 Monitor.decision_equal wire_decisions proc_decisions);
              check_bool "some were answered" true
                (List.exists Monitor.is_answered wire_decisions);
              check_bool "some were refused" true
                (List.exists Monitor.is_refused wire_decisions);
              check_bool "monitor states identical" true (wire_snapshot = proc_snapshot);
              for i = 0 to domains - 1 do
                let seg = Printf.sprintf ".shard%d" i in
                check_bool
                  (Printf.sprintf "shard %d journal bytes identical" i)
                  true
                  (String.equal (read_file (base_wire ^ seg)) (read_file (base_proc ^ seg)))
              done)))

(* The pipelined client against a group-commit server: the whole history
   goes down one connection with a bounded in-flight window, and the
   decisions come back in request order, bit-identical — decisions, monitor
   states, journal bytes — to the serial in-process path with per-decision
   commits. Pipelining and group commit change scheduling and fsync
   batching, never semantics. *)
let test_pipelined_e2e_bit_identical () =
  with_tmp_base (fun base_pipe ->
      with_tmp_base (fun base_proc ->
          with_socket (fun addr ->
              let server = make_server ~journal:base_pipe ~group_commit:true () in
              Server.start server;
              let listener = Net.Listener.create ~server addr in
              let pipe_decisions =
                Net.Client.with_connection addr (fun c ->
                    Net.Client.query_batch_string ~depth:4 c history)
                |> List.map (function
                     | Ok d -> d
                     | Error e ->
                       Alcotest.failf "pipelined query failed: %s" (Errors.to_string e))
              in
              Net.Listener.stop listener;
              Server.drain server;
              let pipe_snapshot = Server.snapshot server in
              let flushes = Array.fold_left ( + ) 0 (Server.flush_counts server) in
              Server.stop server;
              let server' = make_server ~journal:base_proc () in
              Server.start server';
              let proc_decisions =
                List.map
                  (fun (principal, q) -> Server.submit_sync server' ~principal (pq q))
                  history
              in
              Server.drain server';
              let proc_snapshot = Server.snapshot server' in
              Server.stop server';
              check_bool "pipelined decisions in request order, identical" true
                (List.for_all2 Monitor.decision_equal pipe_decisions proc_decisions);
              check_bool "monitor states identical" true (pipe_snapshot = proc_snapshot);
              for i = 0 to domains - 1 do
                let seg = Printf.sprintf ".shard%d" i in
                check_bool
                  (Printf.sprintf "shard %d journal bytes identical" i)
                  true
                  (String.equal (read_file (base_pipe ^ seg)) (read_file (base_proc ^ seg)))
              done;
              check_bool "group commit flushed at most once per decision" true
                (flushes <= List.length history))))

(* Mixed request kinds keep positional order through the pipelined frame
   loop: immediate replies (pings) interleave with deferred decisions. *)
let test_pipelined_mixed_requests_ordered () =
  with_socket (fun addr ->
      let server = make_server () in
      Server.start server;
      let listener = Net.Listener.create ~server addr in
      let reqs =
        [
          Codec.Ping;
          Codec.Query { principal = "calendar-app"; query = "Q(x) :- Meetings(x, y)"; trace = None };
          Codec.Ping;
          Codec.Query { principal = "calendar-app"; query = "Q(x, y) :- Meetings(x, y)"; trace = None };
          Codec.Ping;
        ]
      in
      let responses =
        Net.Client.with_connection addr (fun c -> Net.Client.request_pipelined c reqs)
      in
      (match responses with
      | [ Codec.Pong; Codec.Decision d1; Codec.Pong; Codec.Decision d2; Codec.Pong ] ->
        check_bool "first decision answered" true (Monitor.is_answered d1);
        check_bool "second decision refused (projection widens)" true
          (Monitor.is_refused d2)
      | rs -> Alcotest.failf "responses out of order or mistyped (%d)" (List.length rs));
      Net.Listener.stop listener;
      Server.stop server)

(* [Frame.decode_sub] at offset [k] must agree exactly with [Frame.decode]
   on the suffix — the pipelined frame loop depends on offset-based decoding
   being indistinguishable from the old slice-and-decode. *)
let test_decode_sub_equals_decode_on_suffix () =
  let progress_equal a b =
    match (a, b) with
    | Frame.Frame { payload = p; consumed = c }, Frame.Frame { payload = p'; consumed = c' }
      -> String.equal p p' && c = c'
    | Frame.Need_more n, Frame.Need_more n' -> n = n'
    | Frame.Corrupt e, Frame.Corrupt e' ->
      String.equal (Errors.to_string e) (Errors.to_string e')
    | _ -> false
  in
  let prefixes = [ ""; "x"; String.make 7 '\xff'; Frame.encode "earlier" ] in
  let suffixes =
    List.map Frame.encode sample_payloads
    @ [ ""; "garbage"; String.sub (Frame.encode "torn") 0 5 ]
  in
  List.iter
    (fun prefix ->
      List.iter
        (fun suffix ->
          let off = String.length prefix in
          check_bool
            (Printf.sprintf "decode_sub at %d ≡ decode on suffix (%d bytes)" off
               (String.length suffix))
            true
            (progress_equal
               (Frame.decode_sub (prefix ^ suffix) ~off)
               (Frame.decode suffix)))
        suffixes)
    prefixes;
  (* Bad offsets are programmer errors, not protocol errors. *)
  Alcotest.check_raises "negative offset rejected"
    (Invalid_argument "Frame.decode_sub: offset out of bounds") (fun () ->
      ignore (Frame.decode_sub "abc" ~off:(-1)));
  Alcotest.check_raises "offset past the end rejected"
    (Invalid_argument "Frame.decode_sub: offset out of bounds") (fun () ->
      ignore (Frame.decode_sub "abc" ~off:4))

(* [Fdio.write_all] under EINTR: the payload overflows the socket buffer so
   the writer blocks, and an interval timer delivers SIGALRM while it is
   blocked — each delivery interrupts the write with EINTR. The reader only
   starts draining after the writer has filled the buffer. Every byte must
   arrive, in order — the EINTR/partial-write loop may not drop, duplicate,
   or reorder anything. *)
let test_write_all_survives_eintr () =
  let previous = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.0; it_value = 0.0 });
      ignore (Sys.signal Sys.sigalrm previous))
    (fun () ->
      let sender, receiver = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let payload =
        String.init (1 lsl 18) (fun i -> Char.chr ((i * 131) land 0xff))
      in
      let reader =
        Domain.spawn (fun () ->
            (* Let the writer fill the socket buffer and block in [write]
               first, so the timer interrupts a blocked syscall. *)
            (try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            let buf = Bytes.create 4096 in
            let out = Buffer.create (String.length payload) in
            let rec loop () =
              match Unix.read receiver buf 0 (Bytes.length buf) with
              | 0 -> ()
              | n ->
                Buffer.add_subbytes out buf 0 n;
                loop ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            in
            loop ();
            Unix.close receiver;
            Buffer.contents out)
      in
      ignore
        (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.005; it_value = 0.005 });
      Net.Fdio.write_all sender payload;
      ignore
        (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.0; it_value = 0.0 });
      Unix.close sender;
      let received = Domain.join reader in
      check_int "every byte arrived" (String.length payload) (String.length received);
      check_bool "bytes intact and in order" true (String.equal payload received))

let test_ping_stats_over_wire () =
  with_socket (fun addr ->
      let server = make_server () in
      Server.start server;
      let listener = Net.Listener.create ~server addr in
      Net.Client.with_connection addr (fun c ->
          Net.Client.ping c;
          ignore (Net.Client.query_string c ~principal:"crm-app" "Q(x) :- Meetings(x, y)");
          let doc = Net.Client.stats c in
          check_bool "stats has uptime" true (Obs.Json.member "uptime_s" doc <> None);
          let metrics = Obs.Json.member "metrics" doc in
          check_bool "stats has metrics" true (metrics <> None);
          let counter name =
            match Option.bind metrics (Obs.Json.member name) with
            | Some (Obs.Json.Num n) -> int_of_float n
            | _ -> Alcotest.failf "metrics.%s missing from stats document" name
          in
          check_bool "accepts counted in stats" true (counter "net_accepted" >= 1);
          check_bool "requests counted in stats" true (counter "net_requests" >= 2);
          check_bool "bytes counted in stats" true
            (counter "net_bytes_in" > 0 && counter "net_bytes_out" > 0));
      Net.Listener.stop listener;
      Server.stop server)

(* Semantic errors ride on intact framing and keep the connection open. *)
let test_unknown_principal_keeps_connection () =
  with_socket (fun addr ->
      let server = make_server () in
      Server.start server;
      let listener = Net.Listener.create ~server addr in
      Net.Client.with_connection addr (fun c ->
          (match Net.Client.query_string c ~principal:"nobody" "Q(x) :- Meetings(x, y)" with
          | Error { Errors.kind = Errors.Unknown_principal; _ } -> ()
          | _ -> Alcotest.fail "unknown principal must be a typed error");
          (match Net.Client.query_string c ~principal:"crm-app" "this is not cq((" with
          | Error { Errors.kind = Errors.Bad_request; _ } -> ()
          | _ -> Alcotest.fail "unparseable query must be bad-request");
          (* Same connection still serves. *)
          match Net.Client.query_string c ~principal:"crm-app" "Q(x) :- Meetings(x, y)" with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Errors.to_string e));
      Net.Listener.stop listener;
      Server.stop server)

(* --- malformed input over the wire -------------------------------------- *)

let unix_path = function Net.Addr.Unix_socket p -> p | _ -> assert false

let raw_connect addr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX (unix_path addr));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let write_raw fd s =
  let b = Bytes.unsafe_of_string s in
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Read to EOF and decode the first frame, if the server sent one. *)
let read_response fd =
  let buf = Buffer.create 256 in
  let scratch = Bytes.create 1024 in
  (try
     let rec loop () =
       match Unix.read fd scratch 0 1024 with
       | 0 -> ()
       | n ->
         Buffer.add_subbytes buf scratch 0 n;
         loop ()
     in
     loop ()
   with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
     ());
  match Frame.decode (Buffer.contents buf) with
  | Frame.Frame { payload; _ } -> (
    match Codec.decode_response payload with Ok r -> Some r | Error _ -> None)
  | _ -> None

let expect_wire_error what expected = function
  | Some (Codec.Error { Errors.kind; _ }) when kind = expected -> ()
  | Some (Codec.Error e) ->
    Alcotest.failf "%s: expected %s, got %s" what
      (Errors.kind_to_tag expected) (Errors.to_string e)
  | Some _ -> Alcotest.failf "%s: expected an error frame" what
  | None -> Alcotest.failf "%s: no response frame" what

(* Garbage, bit flips, oversized headers, torn streams, timeouts: every one
   is a typed error frame and a closed connection. The listener survives
   all of it, the monitor state never moves, and nothing is journaled. *)
let test_malformed_torture_over_wire () =
  with_tmp_base (fun base ->
      with_socket (fun addr ->
          let server = make_server ~journal:base () in
          Server.start server;
          let config =
            { Net.Listener.default_config with
              conn = { Net.Conn.read_deadline = 0.5; max_payload = 4096 } }
          in
          let listener = Net.Listener.create ~config ~server addr in
          let baseline = Server.snapshot server in
          let roundtrip bytes =
            let fd = raw_connect addr in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                write_raw fd bytes;
                (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
                read_response fd)
          in
          expect_wire_error "garbage bytes" Errors.Bad_magic
            (roundtrip "once upon a time, far from any framing discipline");
          expect_wire_error "wrong version" Errors.Bad_version (roundtrip "DCN1\x09rest");
          let valid = Frame.encode (Codec.encode_request Codec.Ping) in
          let flipped = Bytes.of_string valid in
          Bytes.set flipped (Frame.header_len + 2)
            (Char.chr (Char.code valid.[Frame.header_len + 2] lxor 0x01));
          expect_wire_error "bit flip in payload" Errors.Crc_mismatch
            (roundtrip (Bytes.to_string flipped));
          let oversized = Bytes.of_string (Frame.encode "x") in
          Bytes.set oversized 5 '\x7f';
          expect_wire_error "oversized header" Errors.Oversized
            (roundtrip (Bytes.to_string oversized));
          expect_wire_error "valid frame, invalid JSON" Errors.Bad_json
            (roundtrip (Frame.encode "{\"op\": this is not json"));
          (* A silent partial frame trips the read deadline. *)
          (let fd = raw_connect addr in
           Fun.protect
             ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
             (fun () ->
               write_raw fd (String.sub valid 0 6);
               expect_wire_error "read deadline" Errors.Timeout (read_response fd)));
          (* Torn at every byte offset: close mid-frame wherever the cut
             lands; the server answers torn (or the peer raced the close)
             and never wavers. *)
          for cut = 1 to String.length valid - 1 do
            match roundtrip (String.sub valid 0 cut) with
            | Some (Codec.Error { Errors.kind = Errors.Torn; _ }) | None -> ()
            | Some (Codec.Error e) ->
              Alcotest.failf "cut at %d: expected torn, got %s" cut (Errors.to_string e)
            | Some _ -> Alcotest.failf "cut at %d: expected an error frame" cut
          done;
          (* The listener shrugged all of it off. *)
          Net.Client.with_connection addr (fun c -> Net.Client.ping c);
          let metrics = Server.metrics server in
          check_bool "typed errors were counted" true
            (Server.Metrics.count metrics Server.Metrics.Net_errors
            >= 5 + (String.length valid - 1));
          check_bool "monitor states never moved" true (Server.snapshot server = baseline);
          Net.Listener.stop listener;
          Server.stop server;
          for i = 0 to domains - 1 do
            check_bool "nothing journaled" true
              (String.equal "" (read_file (Printf.sprintf "%s.shard%d" base i)))
          done))

(* --- overload over the wire --------------------------------------------- *)

(* Saturate a one-slot mailbox before the workers start, then submit the
   overflowing query through the socket: the client receives the same
   fail-closed [Refused Overload], and monitor state and journal bytes are
   bit-identical to the in-process shed run. *)
let test_overload_over_wire_bit_identical () =
  let shed_run submit_overflow base =
    let server = make_server ~journal:base ~mailbox_capacity:1 ~cache_capacity:0 () in
    let q = "Q(x) :- Meetings(x, y)" in
    (* Fill calendar-app's shard mailbox deterministically (not started →
       nothing drains). *)
    let queued = Server.submit server ~principal:"calendar-app" (pq q) in
    let shed_decision = submit_overflow server ~principal:"calendar-app" q in
    (match shed_decision with
    | Monitor.Refused Guard.Overload -> ()
    | d -> Alcotest.failf "expected Refused Overload, got %a" Monitor.pp_decision d);
    Server.start server;
    check_bool "queued query still answered" true (Server.await queued = Monitor.Answered);
    Server.drain server;
    let snapshot = Server.snapshot server in
    let overloads = Server.Metrics.count (Server.metrics server) Server.Metrics.Overloaded in
    Server.stop server;
    (snapshot, overloads)
  in
  with_tmp_base (fun base_wire ->
      with_tmp_base (fun base_proc ->
          with_socket (fun addr ->
              let wire_result = ref None in
              let (snapshot_wire, overloads_wire) =
                shed_run
                  (fun server ~principal q ->
                    let listener = Net.Listener.create ~server addr in
                    let decision =
                      Net.Client.with_connection addr (fun c ->
                          match Net.Client.query_string c ~principal q with
                          | Ok d -> d
                          | Error e -> Alcotest.fail (Errors.to_string e))
                    in
                    wire_result := Some listener;
                    decision)
                  base_wire
              in
              Option.iter Net.Listener.stop !wire_result;
              let (snapshot_proc, overloads_proc) =
                shed_run
                  (fun server ~principal q -> Server.submit_sync server ~principal (pq q))
                  base_proc
              in
              check_int "one overload each" overloads_proc overloads_wire;
              check_bool "monitor states bit-identical" true (snapshot_wire = snapshot_proc);
              for i = 0 to domains - 1 do
                let seg = Printf.sprintf ".shard%d" i in
                check_bool "journal bytes bit-identical (shed never journaled)" true
                  (String.equal (read_file (base_wire ^ seg)) (read_file (base_proc ^ seg)))
              done)))

(* Concurrent hammer: several client domains against tiny mailboxes. Every
   round trip must come back as a decision (answered, refused, or overload
   — never a hang, never a transport error), and the journal the run leaves
   behind must recover to the live monitor state. *)
let test_concurrent_clients_under_overload () =
  with_tmp_base (fun base ->
      with_socket (fun addr ->
          let server = make_server ~journal:base ~mailbox_capacity:2 ~cache_capacity:0 () in
          Server.start server;
          let listener = Net.Listener.create ~server addr in
          let per_client = 25 in
          let clients =
            List.init 4 (fun i ->
                Domain.spawn (fun () ->
                    Net.Client.with_connection addr (fun c ->
                        let principal =
                          [| "calendar-app"; "crm-app"; "hr-app" |].(i mod 3)
                        in
                        let ok = ref 0 in
                        for _ = 1 to per_client do
                          match
                            Net.Client.query_string c ~principal "Q(x) :- Meetings(x, y)"
                          with
                          | Ok _ -> incr ok
                          | Error e -> Alcotest.fail (Errors.to_string e)
                        done;
                        !ok)))
          in
          let decided = List.fold_left (fun acc d -> acc + Domain.join d) 0 clients in
          check_int "every round trip produced a decision" (4 * per_client) decided;
          Net.Listener.stop listener;
          Server.drain server;
          let live = Server.snapshot server in
          Server.stop server;
          let fresh = make_server () in
          (match Server.recover fresh ~journal:base with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Disclosure.Service.recovery_error_to_string e));
          check_bool "journal recovers to the live state" true
            (Server.snapshot fresh = live);
          Server.stop fresh))

(* --- lifecycle: caps, shutdown, fault matrix ----------------------------- *)

let test_connection_cap_refuses_busy () =
  with_socket (fun addr ->
      let server = make_server () in
      Server.start server;
      let config = { Net.Listener.default_config with max_connections = 1 } in
      let listener = Net.Listener.create ~config ~server addr in
      Net.Client.with_connection addr (fun c1 ->
          Net.Client.ping c1;
          (* c1 holds the only slot; the next connection is refused. *)
          let c2 = Net.Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Net.Client.close c2)
            (fun () ->
              match Net.Client.query_string c2 ~principal:"crm-app" "Q(x) :- Meetings(x, y)" with
              | Error { Errors.kind = Errors.Busy; _ } -> ()
              | Error e -> Alcotest.failf "expected busy, got %s" (Errors.to_string e)
              | Ok _ -> Alcotest.fail "over-cap connection must be refused"
              | exception Net.Client.Protocol_error _ ->
                (* The refusal frame can lose the race with the close. *) ()));
      let m = Server.metrics server in
      check_bool "rejecting counted" true (Server.Metrics.count m Server.Metrics.Net_rejected >= 1);
      (* The slot freed up: a new connection is accepted again. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec retry () =
        match Net.Client.with_connection addr Net.Client.ping with
        | () -> ()
        | exception _ when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.02;
          retry ()
      in
      retry ();
      Net.Listener.stop listener;
      Server.stop server)

let test_graceful_shutdown () =
  with_socket (fun addr ->
      let server = make_server () in
      Server.start server;
      let listener = Net.Listener.create ~server addr in
      let c = Net.Client.connect addr in
      Net.Client.ping c;
      Net.Listener.stop listener;
      Net.Listener.stop listener (* idempotent *);
      (* The live connection was half-closed: the next round trip fails as a
         transport error, not a hang. *)
      (match Net.Client.ping c with
      | () -> Alcotest.fail "connection must be gone after stop"
      | exception Net.Client.Protocol_error _ -> ()
      | exception Unix.Unix_error _ -> ());
      Net.Client.close c;
      (* The socket file is unlinked; new connections are refused cleanly. *)
      (match Net.Client.connect addr with
      | c' ->
        Net.Client.close c';
        Alcotest.fail "listener must not accept after stop"
      | exception Unix.Unix_error _ -> ());
      (* The server itself is untouched: the in-process path still works. *)
      check_bool "server survives listener shutdown" true
        (Server.submit_sync server ~principal:"crm-app" (pq "Q(x) :- Meetings(x, y)")
        = Monitor.Answered);
      Server.stop server)

(* A fault at any net stage costs at most the affected connection: the
   listener keeps accepting, the monitor state never moves, nothing is
   journaled by the faulted exchange. *)
let test_net_fault_matrix () =
  with_tmp_base (fun base ->
      with_socket (fun addr ->
          let server = make_server ~journal:base () in
          Server.start server;
          let listener = Net.Listener.create ~server addr in
          let journal_bytes () =
            List.init domains (fun i -> read_file (Printf.sprintf "%s.shard%d" base i))
          in
          List.iter
            (fun stage ->
              Server.drain server;
              let snapshot_before = Server.snapshot server in
              let journal_before = journal_bytes () in
              Faults.with_fault stage (Faults.Raise "injected net fault") (fun () ->
                  match
                    Net.Client.with_connection addr (fun c ->
                        Net.Client.query_string c ~principal:"crm-app" "Q(x) :- Meetings(x, y)")
                  with
                  | Ok d ->
                    Alcotest.failf "fault at %s must not decide: %a" (Faults.stage_name stage)
                      Monitor.pp_decision d
                  | Error { Errors.kind = Errors.Fault; _ } -> ()
                  | Error e ->
                    Alcotest.failf "fault at %s: unexpected error %s" (Faults.stage_name stage)
                      (Errors.to_string e)
                  | exception Net.Client.Protocol_error _ -> ()
                  | exception Unix.Unix_error _ -> ());
              (* Accept- and decode-stage faults never reach the monitor or
                 the journal. *)
              Server.drain server;
              check_bool
                (Faults.stage_name stage ^ " fault leaves monitors untouched")
                true
                (Server.snapshot server = snapshot_before);
              check_bool
                (Faults.stage_name stage ^ " fault journals nothing")
                true
                (journal_bytes () = journal_before);
              (* Disarmed: the very next connection serves normally. *)
              match
                Net.Client.with_connection addr (fun c ->
                    Net.Client.query_string c ~principal:"crm-app" "Q(x) :- Meetings(x, y)")
              with
              | Ok Monitor.Answered -> ()
              | Ok d -> Alcotest.failf "expected answered, got %a" Monitor.pp_decision d
              | Error e -> Alcotest.fail (Errors.to_string e))
            [ Faults.Net_accept; Faults.Net_decode ];
          (* Net_write: the decision happens, the response write fails; the
             connection dies alone and the listener lives. *)
          Faults.with_fault Faults.Net_write (Faults.Raise "injected write fault") (fun () ->
              match
                Net.Client.with_connection addr (fun c ->
                    Net.Client.query_string c ~principal:"crm-app" "Q(x) :- Meetings(x, y)")
              with
              | Ok _ -> Alcotest.fail "write fault must not deliver a response"
              | Error _ -> ()
              | exception Net.Client.Protocol_error _ -> ()
              | exception Unix.Unix_error _ -> ());
          (* Still alive, still correct. *)
          (match
             Net.Client.with_connection addr (fun c ->
                 Net.Client.query_string c ~principal:"crm-app" "Q(x) :- Meetings(x, y)")
           with
          | Ok Monitor.Answered -> ()
          | _ -> Alcotest.fail "listener must survive the write fault");
          Net.Listener.stop listener;
          Server.stop server))

(* --- trace integration --------------------------------------------------- *)

let test_net_trace_spans () =
  with_socket (fun addr ->
      let trace = Obs.Trace.create ~tracks:(domains + 1) () in
      let server = make_server ~trace () in
      Server.start server;
      let listener = Net.Listener.create ~trace:(trace, domains) ~server addr in
      ignore (run_wire addr history);
      Net.Listener.stop listener;
      Server.drain server;
      Server.stop server;
      let net_spans =
        List.filter (fun s -> s.Obs.Trace.name = "net") (Obs.Trace.roots trace)
      in
      check_int "one net span per wire query" (List.length history) (List.length net_spans);
      check_bool "net spans live on the dedicated track" true
        (List.for_all (fun s -> s.Obs.Trace.track = domains) net_spans);
      check_bool "net spans carry the query text" true
        (List.for_all (fun s -> List.mem_assoc "query" s.Obs.Trace.attrs) net_spans);
      (* The shard-side spans are still there too, on their own tracks. *)
      check_bool "shard spans coexist" true
        (List.exists
           (fun s -> s.Obs.Trace.name = "query" && s.Obs.Trace.track < domains)
           (Obs.Trace.roots trace)))

(* --- budget deadline regression (satellite) ------------------------------ *)

(* Deadlines are armed and checked on the monotonic clock: a budget without
   a deadline never expires, a short deadline expires only once the
   monotonic clock actually passes it, and expiry surfaces as the same
   [Exhausted Deadline] the guard maps to a fail-closed refusal. *)
let test_budget_monotonic_deadline () =
  let no_deadline = Cq.Budget.create ~fuel:1_000_000 () in
  for _ = 1 to 10_000 do
    Cq.Budget.tick no_deadline
  done;
  Cq.Budget.check_deadline no_deadline;
  let b = Cq.Budget.create ~deadline:0.05 () in
  check_bool "not expired at birth" true
    (match Cq.Budget.check_deadline b with () -> true | exception _ -> false);
  Unix.sleepf 0.08;
  (match Cq.Budget.check_deadline b with
  | () -> Alcotest.fail "deadline must expire once the monotonic clock passes it"
  | exception Cq.Budget.Exhausted Cq.Budget.Deadline -> ());
  (* [burn] notices the deadline too (every stride ticks). *)
  let b2 = Cq.Budget.create ~deadline:0.05 () in
  Unix.sleepf 0.08;
  (match
     for _ = 1 to 10_000 do
       Cq.Budget.tick b2
     done
   with
  | () -> Alcotest.fail "burning past an expired deadline must raise"
  | exception Cq.Budget.Exhausted Cq.Budget.Deadline -> ());
  (* And the guard still maps it to a fail-closed refusal. *)
  let limits = Guard.limits ~deadline:0.01 () in
  match
    Guard.run limits (fun budget ->
        Unix.sleepf 0.05;
        Cq.Budget.check_deadline budget)
  with
  | Error (Guard.Resource Guard.Deadline) -> ()
  | Ok () -> Alcotest.fail "guard must refuse past the deadline"
  | Error r -> Alcotest.failf "expected a deadline refusal, got %a" Guard.pp_refusal r

let () =
  Alcotest.run "disclosure-net"
    [
      ( "frame",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn at every byte offset" `Quick test_frame_torn_every_offset;
          Alcotest.test_case "single-byte flip always detected" `Quick
            test_frame_flip_every_byte;
          Alcotest.test_case "oversized header rejected early" `Quick
            test_frame_oversized_rejected_early;
          Alcotest.test_case "decode is total (fuzz)" `Quick test_frame_fuzz_never_raises;
          Alcotest.test_case "decode_sub at an offset ≡ decode on the suffix" `Quick
            test_decode_sub_equals_decode_on_suffix;
          Alcotest.test_case "write_all survives an EINTR storm" `Quick
            test_write_all_survives_eintr;
        ] );
      ( "codec",
        [
          Alcotest.test_case "error tags roundtrip" `Quick test_error_tags_roundtrip;
          Alcotest.test_case "request/response roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "malformed payloads are typed errors" `Quick
            test_codec_rejects_malformed;
          Alcotest.test_case "addresses parse" `Quick test_addr_parse;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "wire ≡ in-process, bit-identical journal" `Quick
            test_e2e_bit_identical_journal;
          Alcotest.test_case "pipelined client ≡ in-process under group commit" `Quick
            test_pipelined_e2e_bit_identical;
          Alcotest.test_case "mixed pipelined requests keep positional order" `Quick
            test_pipelined_mixed_requests_ordered;
          Alcotest.test_case "ping and stats over the wire" `Quick test_ping_stats_over_wire;
          Alcotest.test_case "semantic errors keep the connection" `Quick
            test_unknown_principal_keeps_connection;
        ] );
      ( "torture",
        [
          Alcotest.test_case "malformed input never crashes or journals" `Quick
            test_malformed_torture_over_wire;
        ] );
      ( "overload",
        [
          Alcotest.test_case "overload over the wire ≡ in-process shed" `Quick
            test_overload_over_wire_bit_identical;
          Alcotest.test_case "concurrent clients under tiny mailboxes" `Quick
            test_concurrent_clients_under_overload;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "connection cap refuses busy" `Quick
            test_connection_cap_refuses_busy;
          Alcotest.test_case "graceful shutdown" `Quick test_graceful_shutdown;
          Alcotest.test_case "net fault matrix" `Quick test_net_fault_matrix;
          Alcotest.test_case "net spans on a dedicated track" `Quick test_net_trace_spans;
        ] );
      ( "budget",
        [
          Alcotest.test_case "deadlines ride the monotonic clock" `Quick
            test_budget_monotonic_deadline;
        ] );
    ]
