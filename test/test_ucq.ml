(* Tests for unions of conjunctive queries and their disclosure labels,
   including FQL's OR. *)

module Ucq = Cq.Ucq
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Rel = Relational.Relation

let pq = Helpers.pq

let ucq qs = Ucq.make (List.map pq qs)

let test_make_validation () =
  Helpers.check_bool "empty union rejected" true
    (try
       ignore (Ucq.make []);
       false
     with Ucq.Invalid _ -> true);
  Helpers.check_bool "mixed arity rejected" true
    (try
       ignore (ucq [ "Q(x) :- R(x)"; "Q(x, y) :- R(x), R(y)" ]);
       false
     with Ucq.Invalid _ -> true)

let test_containment () =
  let u1 = ucq [ "Q(x) :- Meetings(x, 'Cathy')"; "Q(x) :- Meetings(x, 'Jim')" ] in
  let u2 = ucq [ "Q(x) :- Meetings(x, y)" ] in
  Helpers.check_bool "selections contained in projection" true (Ucq.contained_in u1 u2);
  Helpers.check_bool "not conversely" false (Ucq.contained_in u2 u1);
  Helpers.check_bool "reflexive" true (Ucq.contained_in u1 u1);
  (* Permuted unions are equivalent. *)
  let u1' = ucq [ "Q(x) :- Meetings(x, 'Jim')"; "Q(x) :- Meetings(x, 'Cathy')" ] in
  Helpers.check_bool "order irrelevant" true (Ucq.equivalent u1 u1')

let test_minimize () =
  let u =
    ucq
      [
        "Q(x) :- Meetings(x, 'Cathy')";
        "Q(x) :- Meetings(x, y)";
        "Q(x) :- Meetings(x, z), Meetings(x, w)";
      ]
  in
  let m = Ucq.minimize u in
  (* The selection is contained in the projection; the third disjunct is the
     projection again after folding. Only the projection survives. *)
  Helpers.check_int "one disjunct" 1 (List.length m.Ucq.disjuncts);
  Helpers.check_bool "equivalent" true (Ucq.equivalent u m)

let test_eval_union () =
  let u = ucq [ "Q(x) :- Meetings(x, 'Cathy')"; "Q(x) :- Meetings(x, 'Jim')" ] in
  let answer = Ucq.eval Helpers.fig1_db u in
  Helpers.check_int "two meetings" 2 (Rel.cardinal answer);
  (* Evaluation agrees with disjunct-wise union. *)
  let direct =
    Rel.union
      (Cq.Eval.eval Helpers.fig1_db (pq "Q(x) :- Meetings(x, 'Cathy')"))
      (Cq.Eval.eval Helpers.fig1_db (pq "Q(x) :- Meetings(x, 'Jim')"))
  in
  Alcotest.check Helpers.relation_testable "union" direct answer

let fig1_pipeline =
  Pipeline.create
    [
      Helpers.sview "V1(x, y) :- Meetings(x, y)";
      Helpers.sview "V2(x) :- Meetings(x, y)";
      Helpers.sview "V3(x, y, z) :- Contacts(x, y, z)";
    ]

let test_label_union () =
  (* A union over both relations needs views from both. *)
  let u = ucq [ "Q(x) :- Meetings(x, y)"; "Q(p) :- Contacts(p, e, r)" ] in
  let l = Pipeline.label_ucq fig1_pipeline u in
  Helpers.check_int "two atom labels" 2 (Array.length l);
  Helpers.check_bool "not top" false (Label.is_top l);
  (* The label is above each disjunct's label. *)
  List.iter
    (fun q ->
      Helpers.check_bool "disjunct below union" true
        (Label.leq (Pipeline.label fig1_pipeline (pq q)) l))
    [ "Q(x) :- Meetings(x, y)"; "Q(p) :- Contacts(p, e, r)" ]

let test_label_redundant_disjunct () =
  (* A redundant disjunct must not inflate the label: the selection needs V1,
     but it is absorbed by the projection disjunct which only needs V2. *)
  let u = ucq [ "Q(x) :- Meetings(x, 'Cathy')"; "Q(x) :- Meetings(x, y)" ] in
  let l = Pipeline.label_ucq fig1_pipeline u in
  let projection_only = Pipeline.label fig1_pipeline (pq "Q(x) :- Meetings(x, y)") in
  Helpers.check_bool "union label = projection label" true (Label.equal l projection_only)

let test_fql_or () =
  let schema = Fbschema.Fb_schema.schema in
  let u =
    Fb_api.Fql.ucq_exn schema
      "SELECT birthday FROM user WHERE uid = me() OR is_friend = true"
  in
  Helpers.check_int "two disjuncts" 2 (List.length u.Ucq.disjuncts);
  let p = Fbschema.Fb_views.pipeline () in
  let l = Pipeline.label_ucq p u in
  let names =
    Label.atoms l
    |> List.concat_map (fun al ->
           Label.views_of_atom (Pipeline.registry p) al
           |> List.map (fun v -> v.Disclosure.Sview.name))
    |> List.sort_uniq String.compare
  in
  (* Note: without uid in the head the friends disjunct tops out under the
     single-atom model only if uid is required; birthday alone for friends is
     answerable by friends_birthday (uid distinguished in the view but not
     requested — existential in the query, covered by a distinguished view
     column). *)
  Helpers.check_bool "user_birthday in label" true (List.mem "user_birthday" names);
  Helpers.check_bool "friends_birthday in label" true (List.mem "friends_birthday" names)

let test_fql_or_in_subquery_rejected () =
  let schema = Fbschema.Fb_schema.schema in
  Helpers.check_bool "OR inside IN rejected" true
    (Result.is_error
       (Fb_api.Fql.ucq schema
          "SELECT name FROM user WHERE uid IN (SELECT friend_uid FROM friend WHERE uid = me() OR uid = 'bob')"))

let test_fql_plain_parse_rejects_or () =
  Helpers.check_bool "conjunctive parse rejects OR" true
    (Result.is_error (Fb_api.Fql.parse "SELECT name FROM user WHERE uid = me() OR uid = 'b'"))

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "containment" `Quick test_containment;
    Alcotest.test_case "minimize" `Quick test_minimize;
    Alcotest.test_case "eval union" `Quick test_eval_union;
    Alcotest.test_case "label union" `Quick test_label_union;
    Alcotest.test_case "redundant disjunct" `Quick test_label_redundant_disjunct;
    Alcotest.test_case "FQL OR" `Quick test_fql_or;
    Alcotest.test_case "FQL OR in subquery" `Quick test_fql_or_in_subquery_rejected;
    Alcotest.test_case "conjunctive parse rejects OR" `Quick test_fql_plain_parse_rejects_or;
  ]
