(* Replication suite (its own executable: it runs full primary/follower
   pairs with worker domains, sockets, and a few dozen promotions).

   The failover contract, torture-tested:

   - the follower's mirror is a BIT-IDENTICAL prefix of the primary's
     committed segment family, and promoting a follower that holds the
     first [k] records yields exactly the state the primary's own crash
     recovery would produce from that prefix — for EVERY record boundary
     [k];
   - a replication batch torn at any non-boundary offset, or with any
     byte flipped, is rejected BEFORE touching the mirror — fail closed,
     never divergent;
   - bootstrap and re-bootstrap go through the primary's checkpoint and
     re-converge to byte equality after compaction;
   - online policy reload drops zero connections and decides every
     in-flight query under exactly one policy version (monotone flip);
   - graceful drain with a follower attached flushes the shipped stream
     to the last committed record while queries are already refused. *)

module Monitor = Disclosure.Monitor
module Pipeline = Disclosure.Pipeline
module Sview = Disclosure.Sview
module Policyfile = Disclosure.Policyfile
module Source = Replicate.Source
module Follower = Replicate.Follower

let pq = Cq.Parser.query_exn

let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"

(* One principal name exercises the escape path in shipped bytes. *)
let hostile = "tab\tapp"

(* The shared configuration: primary and follower must resolve the same
   policy so the follower partitions principals exactly as the primary. *)
let policy : Policyfile.t =
  {
    Policyfile.views = [ v1; v2; v3 ];
    principals =
      [
        ("crm-app", [ ("meetings", [ "V1"; "V2" ]); ("contacts", [ "V3" ]) ]);
        ("calendar-app", [ ("default", [ "V2" ]) ]);
        (hostile, [ ("default", [ "V2" ]) ]);
      ];
  }

let q_contacts = pq "Q(x, y, z) :- Contacts(x, y, z)"
let q_meetings = pq "Q(x, y) :- Meetings(x, y)"
let q_slots = pq "Q(x) :- Meetings(x, y)"

let history : (string * Cq.Query.t) list =
  [
    ("crm-app", q_contacts);
    (hostile, q_slots);
    ("calendar-app", q_slots);
    ("crm-app", q_slots);
    ("calendar-app", q_meetings);
    ("crm-app", q_contacts);
    (hostile, q_meetings);
    ("crm-app", q_meetings);
  ]

let n_records = List.length history

let config ~shards =
  { Server.default_config with domains = shards; cache_capacity = 0 }

let make_primary ?journal ~shards () =
  let server = Server.create ?journal ~config:(config ~shards) (Pipeline.create [ v1; v2; v3 ]) in
  (match Policyfile.resolve policy with
  | Ok resolved ->
    List.iter
      (fun (principal, partitions) -> Server.register server ~principal ~partitions)
      resolved
  | Error e -> Alcotest.failf "resolve: %s" e);
  server

let make_follower ~journal ~shards () =
  match Follower.create ~journal ~shards policy with
  | Ok f -> f
  | Error e -> Alcotest.failf "follower create: %s" e

let run_history server =
  List.iter (fun (principal, q) -> ignore (Server.submit_sync server ~principal q)) history;
  Server.drain server

let read_file path = In_channel.with_open_bin path In_channel.input_all
let read_opt path = if Sys.file_exists path then read_file path else ""

let count_newlines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let rm f = try Sys.remove f with Sys_error _ -> ()

let cleanup_family base =
  for shard = 0 to 3 do
    let b = Printf.sprintf "%s.shard%d" base shard in
    rm b;
    rm (b ^ ".ckpt");
    rm (b ^ ".ckpt.tmp");
    for i = 1 to 16 do
      rm (Printf.sprintf "%s.%d" b i)
    done
  done;
  rm base

let with_bases f =
  let jbase = Filename.temp_file "disclosure-rep-primary" ".journal" in
  let mbase = Filename.temp_file "disclosure-rep-mirror" ".journal" in
  rm jbase;
  rm mbase;
  Fun.protect
    ~finally:(fun () ->
      cleanup_family jbase;
      cleanup_family mbase)
    (fun () -> f jbase mbase)

let with_sock f =
  let path = Filename.temp_file "disclosure-rep" ".sock" in
  Fun.protect ~finally:(fun () -> rm path) (fun () -> f (Net.Addr.Unix_socket path))

(* Drive the follower to convergence through an in-process pull loop
   (no socket): ask from the follower's own cursor, apply, stop once the
   source answers an empty batch with [behind = 0]. *)
let catch_up source fol ~shards =
  for shard = 0 to shards - 1 do
    let rounds = ref 0 in
    let continue = ref true in
    while !continue do
      incr rounds;
      if !rounds > 10_000 then Alcotest.failf "shard %d: replication does not converge" shard;
      let seg, off = Follower.cursor fol ~shard in
      let resp = Source.serve_pull source ~shard ~seg ~off ~max_bytes:0 in
      (match Follower.apply_batch fol ~shard resp with
      | Ok () -> ()
      | Error e -> Alcotest.failf "shard %d apply: %s" shard e);
      match resp with
      | Net.Codec.Batch { behind = 0; data = ""; _ } -> continue := false
      | _ -> ()
    done
  done

(* Same loop over the wire, through [Net.Client.pull]. *)
let catch_up_wire client fol ~shards =
  for shard = 0 to shards - 1 do
    let rounds = ref 0 in
    let continue = ref true in
    while !continue do
      incr rounds;
      if !rounds > 10_000 then Alcotest.failf "shard %d: wire replication does not converge" shard;
      let seg, off = Follower.cursor fol ~shard in
      match Net.Client.pull client ~shard ~seg ~off ~max_bytes:0 with
      | Error e -> Alcotest.failf "shard %d pull: %s" shard (Net.Errors.to_string e)
      | Ok resp -> (
        (match Follower.apply_batch fol ~shard resp with
        | Ok () -> ()
        | Error e -> Alcotest.failf "shard %d apply: %s" shard e);
        match resp with
        | Net.Codec.Batch { behind = 0; data = ""; _ } -> continue := false
        | _ -> ())
    done
  done

let family_files base shard =
  let b = Printf.sprintf "%s.shard%d" base shard in
  (b, b ^ ".ckpt", List.init 16 (fun i -> Printf.sprintf "%s.%d" b (i + 1)))

let check_family_equal ~what jbase mbase ~shards =
  for shard = 0 to shards - 1 do
    let pa, pc, pr = family_files jbase shard in
    let ma, mc, mr = family_files mbase shard in
    if read_opt pa <> read_opt ma then
      Alcotest.failf "%s: shard %d active segment differs from primary" what shard;
    if read_opt pc <> read_opt mc then
      Alcotest.failf "%s: shard %d checkpoint differs from primary" what shard;
    List.iter2
      (fun p m ->
        if read_opt p <> read_opt m then
          Alcotest.failf "%s: shard %d sealed segment %s differs" what shard (Filename.basename p))
      pr mr
  done

let sorted_snapshot l = List.sort (fun (a, _) (b, _) -> compare a b) l

let follower_snapshot fol ~shards =
  List.concat_map
    (fun shard -> Disclosure.Service.snapshot (Follower.service fol ~shard))
    (List.init shards Fun.id)

let check_states_equal ~what server fol ~shards =
  let p = sorted_snapshot (Server.snapshot server) in
  let f = sorted_snapshot (follower_snapshot fol ~shards) in
  if p <> f then Alcotest.failf "%s: follower state differs from primary" what

(* --- codec: pull/batch/snapshot round trips --------------------------- *)

let test_codec_roundtrip () =
  let raw = String.init 256 Char.chr in
  (match Net.Codec.hex_decode (Net.Codec.hex_encode raw) with
  | Ok s -> Alcotest.(check string) "hex round trip" raw s
  | Error e -> Alcotest.failf "hex: %s" e);
  (match Net.Codec.hex_decode "0g" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad hex digit must be rejected");
  (match Net.Codec.hex_decode "abc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "odd-length hex must be rejected");
  let req =
    Net.Codec.Pull
      { shard = 3; seg = 7; off = 123456; max_bytes = 65536; follower = "s1"; trace = None }
  in
  (match Net.Codec.decode_request (Net.Codec.encode_request req) with
  | Ok r when r = req -> ()
  | Ok _ -> Alcotest.fail "pull request round trip changed fields"
  | Error e -> Alcotest.failf "pull request: %s" (Net.Errors.to_string e));
  let check_resp what resp =
    match Net.Codec.decode_response (Net.Codec.encode_response resp) with
    | Ok r when r = resp -> ()
    | Ok _ -> Alcotest.failf "%s round trip changed fields" what
    | Error e -> Alcotest.failf "%s: %s" what e
  in
  check_resp "batch"
    (Net.Codec.Batch
       { shard = 1; data = "J2 \x00\xffbytes\n"; next_seg = 2; next_off = 0; behind = 42; trace = None });
  check_resp "empty batch"
    (Net.Codec.Batch { shard = 0; data = ""; next_seg = 1; next_off = 0; behind = 0; trace = None });
  check_resp "snapshot" (Net.Codec.Snapshot { shard = 1; data = "ckpt\tbytes\n"; next_seg = 5; next_off = 0 })

(* --- steady state: bit-identical mirror, equal replayed state ---------- *)

let test_steady_state () =
  with_bases (fun jbase mbase ->
      let shards = 2 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      run_history server;
      let source = Source.create ~server ~journal:jbase () in
      let fol = make_follower ~journal:mbase ~shards () in
      catch_up source fol ~shards;
      check_family_equal ~what:"steady state" jbase mbase ~shards;
      check_states_equal ~what:"steady state" server fol ~shards;
      Alcotest.(check bool) "source sees follower caught up" true (Source.caught_up source);
      Alcotest.(check int) "lag is zero" 0 (Follower.lag fol);
      Alcotest.(check int) "every record replayed" n_records (Follower.applied fol);
      Alcotest.(check bool) "no divergence" true (Follower.last_error fol = None);
      (* Incremental: more primary traffic, second catch-up stays identical. *)
      run_history server;
      catch_up source fol ~shards;
      check_family_equal ~what:"incremental" jbase mbase ~shards;
      check_states_equal ~what:"incremental" server fol ~shards;
      Server.stop server)

(* --- tiered follower: bounded standby, bit-identical, promotable -------- *)

(* A follower with a resident budget replays the stream through the tiered
   principal store: its mirror bytes and replayed state stay bit-identical
   to an always-resident follower, the per-shard budget actually bounds the
   standby's resident set, and promotion inherits the budget with the
   history intact. *)
let test_tiered_follower () =
  with_bases (fun jbase mbase ->
      let tbase = Filename.temp_file "disclosure-rep-tiered" ".journal" in
      rm tbase;
      let cleanup_spills base =
        for shard = 0 to 3 do
          rm (Printf.sprintf "%s.shard%d.spill" base shard)
        done
      in
      Fun.protect
        ~finally:(fun () ->
          cleanup_family tbase;
          cleanup_spills tbase;
          cleanup_spills mbase)
        (fun () ->
          let shards = 2 in
          let server = make_primary ~journal:jbase ~shards () in
          Server.start server;
          run_history server;
          run_history server;
          let source = Source.create ~server ~journal:jbase () in
          let plain = make_follower ~journal:mbase ~shards () in
          let tiered =
            match
              Follower.create ~resident:(Store.Principals 1) ~journal:tbase ~shards
                policy
            with
            | Ok f -> f
            | Error e -> Alcotest.failf "tiered follower create: %s" e
          in
          catch_up source plain ~shards;
          catch_up source tiered ~shards;
          (* Bit-identity: the tiered mirror matches the primary's segment
             family byte for byte (and hence the plain mirror too). *)
          check_family_equal ~what:"tiered mirror" jbase tbase ~shards;
          check_states_equal ~what:"tiered replay" server tiered ~shards;
          Alcotest.(check bool) "tiered state = plain state" true
            (sorted_snapshot (follower_snapshot tiered ~shards)
            = sorted_snapshot (follower_snapshot plain ~shards));
          (* The budget bites: at most one resident principal per shard, the
             cold principals pushed down a tier. *)
          (match Follower.store_stats tiered with
          | None -> Alcotest.fail "store_stats must be Some on a tiered follower"
          | Some s ->
            Alcotest.(check bool) "resident bounded by the per-shard budget" true
              (s.Store.stat_resident <= shards);
            Alcotest.(check bool) "cold principals left the resident set" true
              (s.Store.stat_spilled + s.Store.stat_fresh > 0));
          Alcotest.(check int) "no lag" 0 (Follower.lag tiered);
          Alcotest.(check bool) "no divergence" true (Follower.last_error tiered = None);
          (* Promotion: recover over the mirror, budget inherited, history
             intact (crm-app chose the contacts side, so meetings refuse). *)
          (match Follower.promote tiered () with
          | Error e -> Alcotest.failf "tiered promote: %s" e
          | Ok (promoted, applied) ->
            Alcotest.(check int) "every record replayed" (2 * n_records) applied;
            Alcotest.(check bool) "promoted server inherits the budget" true
              ((Server.config promoted).Server.resident = Some (Store.Principals 1));
            Alcotest.(check bool) "promoted state = primary state" true
              (sorted_snapshot (Server.snapshot promoted)
              = sorted_snapshot (Server.snapshot server));
            Server.start promoted;
            Alcotest.(check bool) "promoted serves with the history intact" true
              (Monitor.is_refused
                 (Server.submit_sync promoted ~principal:"crm-app" q_meetings));
            Alcotest.(check bool) "promoted answers within the chosen wall" true
              (Server.submit_sync promoted ~principal:"crm-app" q_contacts
              = Monitor.Answered);
            Server.stop promoted);
          Server.stop server))

(* --- poll_once: one pass catches up completely from bootstrap ---------- *)

let test_poll_once_catches_up () =
  with_bases (fun jbase mbase ->
      with_sock (fun addr ->
          let shards = 2 in
          let server = make_primary ~journal:jbase ~shards () in
          Server.start server;
          run_history server;
          let source = Source.create ~server ~journal:jbase () in
          let listener =
            Net.Listener.create ~extend:(Source.handler source) ~server addr
          in
          let fol = make_follower ~journal:mbase ~shards () in
          let client = Net.Client.connect addr in
          (* The documented contract: against a quiescent primary, a SINGLE
             pass bootstraps AND pulls the whole tail — a bootstrap snapshot
             must not end the pass early. *)
          let shipped = Follower.poll_once fol client in
          Alcotest.(check bool) "one pass ships bytes" true (shipped > 0);
          Alcotest.(check int) "one pass replays everything" n_records (Follower.applied fol);
          check_family_equal ~what:"poll_once" jbase mbase ~shards;
          check_states_equal ~what:"poll_once" server fol ~shards;
          Alcotest.(check bool) "source sees follower caught up" true (Source.caught_up source);
          Net.Client.close client;
          Net.Listener.stop listener;
          Server.stop server))

(* --- failover: kill the primary at EVERY record boundary --------------- *)

let test_failover_every_record_boundary () =
  with_bases (fun jbase mbase ->
      let shards = 1 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      (* states.(i) = primary snapshot after the first [i] records. *)
      let states = Array.make (n_records + 1) (sorted_snapshot (Server.snapshot server)) in
      List.iteri
        (fun i (principal, q) ->
          ignore (Server.submit_sync server ~principal q);
          Server.drain server;
          states.(i + 1) <- sorted_snapshot (Server.snapshot server))
        history;
      Server.stop server;
      let whole = read_file (jbase ^ ".shard0") in
      Alcotest.(check int) "every record committed" n_records (count_newlines whole);
      (* Every record-boundary prefix: the stream a follower holds when the
         primary dies right after shipping record [k]. Promotion must yield
         exactly states.(k). *)
      for cut = 0 to String.length whole do
        if cut = 0 || whole.[cut - 1] = '\n' then begin
          let prefix = String.sub whole 0 cut in
          let k = count_newlines prefix in
          cleanup_family mbase;
          let fol = make_follower ~journal:mbase ~shards () in
          (match
             Follower.apply_batch fol ~shard:0
               (Net.Codec.Snapshot { shard = 0; data = ""; next_seg = 1; next_off = 0 })
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "cut %d: bootstrap: %s" cut e);
          (match
             Follower.apply_batch fol ~shard:0
               (Net.Codec.Batch
                  { shard = 0; data = prefix; next_seg = 1; next_off = cut; behind = 0;
                    trace = None })
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "cut %d: apply: %s" cut e);
          if read_opt (mbase ^ ".shard0") <> prefix then
            Alcotest.failf "cut %d: mirror is not the exact shipped prefix" cut;
          match Follower.promote fol ~config:(config ~shards) () with
          | Error e -> Alcotest.failf "cut %d: promote: %s" cut e
          | Ok (promoted, applied) ->
            if applied <> k then
              Alcotest.failf "cut %d: promoted server replayed %d records, expected %d" cut
                applied k;
            if sorted_snapshot (Server.snapshot promoted) <> states.(k) then
              Alcotest.failf "cut %d: promoted state diverges from the primary's prefix state"
                cut;
            Server.stop promoted
        end
      done)

(* --- follower crash: torn mirror tail at every byte offset ------------- *)

let test_follower_resume_torn_mirror () =
  with_bases (fun jbase mbase ->
      let shards = 1 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      run_history server;
      let source = Source.create ~server ~journal:jbase () in
      let whole = read_file (jbase ^ ".shard0") in
      (* A follower killed mid-append leaves a torn mirror tail. Re-creating
         it must drop the torn record, resume from the committed boundary,
         and re-converge to byte equality. *)
      List.iter
        (fun cut ->
          cleanup_family mbase;
          Out_channel.with_open_bin (mbase ^ ".shard0") (fun oc ->
              Out_channel.output_string oc (String.sub whole 0 cut));
          let fol = make_follower ~journal:mbase ~shards () in
          let _seg, off = Follower.cursor fol ~shard:0 in
          let committed =
            let last_nl = ref 0 in
            String.iteri (fun i c -> if c = '\n' && i < cut then last_nl := i + 1) whole;
            !last_nl
          in
          if off <> committed then
            Alcotest.failf "cut %d: resume cursor %d, expected committed boundary %d" cut off
              committed;
          catch_up source fol ~shards;
          if read_opt (mbase ^ ".shard0") <> whole then
            Alcotest.failf "cut %d: re-converged mirror is not byte-identical" cut;
          check_states_equal ~what:(Printf.sprintf "torn mirror cut %d" cut) server fol ~shards)
        (List.init (String.length whole + 1) Fun.id);
      Server.stop server)

(* --- tamper: torn and flipped replication batches fail closed ---------- *)

let test_tamper_every_offset () =
  with_bases (fun jbase mbase ->
      let shards = 1 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      run_history server;
      let whole = read_file (jbase ^ ".shard0") in
      Server.stop server;
      let fol = make_follower ~journal:mbase ~shards () in
      (match
         Follower.apply_batch fol ~shard:0
           (Net.Codec.Snapshot { shard = 0; data = ""; next_seg = 1; next_off = 0 })
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "bootstrap: %s" e);
      let apply data =
        Follower.apply_batch fol ~shard:0
          (Net.Codec.Batch
             { shard = 0; data; next_seg = 1; next_off = String.length data; behind = 0;
               trace = None })
      in
      let check_rejected what data =
        (match apply data with
        | Error _ -> ()
        | Ok () -> Alcotest.failf "%s: tampered batch must be rejected" what);
        if read_opt (mbase ^ ".shard0") <> "" then
          Alcotest.failf "%s: rejected batch reached the mirror" what;
        if Follower.cursor fol ~shard:0 <> (1, 0) then
          Alcotest.failf "%s: rejected batch moved the cursor" what
      in
      (* Torn at every non-boundary offset: a batch must end at a record
         boundary, so a mid-record cut is a corrupt sender. *)
      for cut = 1 to String.length whole - 1 do
        if whole.[cut - 1] <> '\n' then
          check_rejected (Printf.sprintf "torn at %d" cut) (String.sub whole 0 cut)
      done;
      (* Every byte flipped, three patterns: CRC or framing must catch it. *)
      List.iter
        (fun pattern ->
          for i = 0 to String.length whole - 1 do
            let flipped = Bytes.of_string whole in
            Bytes.set flipped i (Char.chr (Char.code whole.[i] lxor pattern));
            check_rejected
              (Printf.sprintf "flip 0x%02x at %d" pattern i)
              (Bytes.to_string flipped)
          done)
        [ 0x01; 0x80; 0xff ];
      (* Wrong shard id fails closed too. *)
      (match
         Follower.apply_batch fol ~shard:0
           (Net.Codec.Batch
              { shard = 1; data = whole; next_seg = 1; next_off = String.length whole;
                behind = 0; trace = None })
       with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "wrong-shard batch must be rejected");
      (* Direct rejections are not divergence: the pristine stream still
         applies and yields the exact final state. *)
      (match apply whole with
      | Ok () -> ()
      | Error e -> Alcotest.failf "pristine batch after tampering: %s" e);
      Alcotest.(check int) "all records replayed" n_records (Follower.applied fol);
      if read_opt (mbase ^ ".shard0") <> whole then
        Alcotest.fail "mirror is not byte-identical after pristine apply")

(* --- bootstrap and re-bootstrap through checkpoints -------------------- *)

let test_checkpoint_bootstrap () =
  with_bases (fun jbase mbase ->
      let shards = 2 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      run_history server;
      (match Server.checkpoint server with
      | Ok () -> ()
      | Error e -> Alcotest.failf "checkpoint: %s" e);
      run_history server;
      let source = Source.create ~server ~journal:jbase () in
      (* A fresh follower's first pull (seg = 0) must bootstrap from the
         checkpoint, not replay from genesis. *)
      (match Source.serve_pull source ~shard:0 ~seg:0 ~off:0 ~max_bytes:0 with
      | Net.Codec.Snapshot { data; _ } ->
        Alcotest.(check bool) "bootstrap ships checkpoint bytes" true (data <> "")
      | _ -> Alcotest.fail "seg 0 pull must answer Snapshot");
      let fol = make_follower ~journal:mbase ~shards () in
      catch_up source fol ~shards;
      check_family_equal ~what:"bootstrap" jbase mbase ~shards;
      check_states_equal ~what:"bootstrap" server fol ~shards;
      (* More traffic, then a compacting checkpoint strands the follower's
         cursor in a segment the primary no longer has: the source must
         answer Snapshot and the follower must re-bootstrap cleanly. *)
      run_history server;
      (match Server.checkpoint server with
      | Ok () -> ()
      | Error e -> Alcotest.failf "second checkpoint: %s" e);
      catch_up source fol ~shards;
      check_family_equal ~what:"re-bootstrap" jbase mbase ~shards;
      check_states_equal ~what:"re-bootstrap" server fol ~shards;
      Alcotest.(check bool) "no divergence across re-bootstrap" true
        (Follower.last_error fol = None);
      (* The re-bootstrapped mirror still promotes to the primary's state. *)
      (match Follower.promote fol ~config:(config ~shards) () with
      | Error e -> Alcotest.failf "promote after re-bootstrap: %s" e
      | Ok (promoted, _) ->
        if sorted_snapshot (Server.snapshot promoted) <> sorted_snapshot (Server.snapshot server)
        then Alcotest.fail "promoted state differs after re-bootstrap";
        Server.stop promoted);
      Server.stop server)

(* --- online reload: flip, carry-over, reset, invalid no-op ------------- *)

let policy_open_calendar : Policyfile.t =
  {
    policy with
    Policyfile.principals =
      [
        ("crm-app", [ ("meetings", [ "V1"; "V2" ]); ("contacts", [ "V3" ]) ]);
        ("calendar-app", [ ("default", [ "V1"; "V2" ]) ]);
        (hostile, [ ("default", [ "V2" ]) ]);
      ];
  }

let test_reload_semantics () =
  let shards = 2 in
  let server = make_primary ~shards () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server)
    (fun () ->
      (* Old policy: calendar-app's V2 cannot answer Q(x, y). *)
      Alcotest.(check bool) "refused under old policy" true
        (Server.submit_sync server ~principal:"calendar-app" q_meetings <> Monitor.Answered);
      (* crm-app accrues state the reload must carry (its partitions are
         unchanged): answering q_slots kills the contacts partition. *)
      Alcotest.(check bool) "crm narrows" true
        (Server.submit_sync server ~principal:"crm-app" q_slots = Monitor.Answered);
      Server.drain server;
      let before = List.assoc "crm-app" (Server.snapshot server) in
      (* Invalid configuration: validation fails, nothing swaps. *)
      let bad =
        { policy with Policyfile.principals = [ ("crm-app", [ ("p", [ "V9" ]) ]) ] }
      in
      (match Server.reload server bad with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "unknown view must fail validation");
      Alcotest.(check bool) "still refused after rejected reload" true
        (Server.submit_sync server ~principal:"calendar-app" q_meetings <> Monitor.Answered);
      (* Valid reload: calendar-app flips to answered; crm-app's charge
         survives (unchanged partitions carry their monitor state). *)
      (match Server.reload server policy_open_calendar with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reload: %s" e);
      Alcotest.(check bool) "answered under new policy" true
        (Server.submit_sync server ~principal:"calendar-app" q_meetings = Monitor.Answered);
      Server.drain server;
      let after = List.assoc "crm-app" (Server.snapshot server) in
      Alcotest.(check bool) "unchanged partitions carry state" true (before = after);
      Alcotest.(check bool) "carried kill still refuses contacts" true
        (Server.submit_sync server ~principal:"crm-app" q_contacts <> Monitor.Answered);
      (* Changing a principal's partitions resets it: contacts comes back. *)
      let reshaped =
        {
          policy with
          Policyfile.principals =
            [
              ("crm-app", [ ("all", [ "V1"; "V2"; "V3" ]) ]);
              ("calendar-app", [ ("default", [ "V1"; "V2" ]) ]);
              (hostile, [ ("default", [ "V2" ]) ]);
            ];
        }
      in
      (match Server.reload server reshaped with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reshape reload: %s" e);
      Alcotest.(check bool) "reshaped principal starts fresh" true
        (Server.submit_sync server ~principal:"crm-app" q_contacts = Monitor.Answered))

let test_reload_recovery_equivalence () =
  with_bases (fun jbase _ ->
      let shards = 2 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      ignore (Server.submit_sync server ~principal:"crm-app" q_slots);
      ignore (Server.submit_sync server ~principal:(hostile) q_slots);
      (match Server.reload server policy_open_calendar with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reload: %s" e);
      ignore (Server.submit_sync server ~principal:"calendar-app" q_meetings);
      ignore (Server.submit_sync server ~principal:"crm-app" q_contacts);
      Server.drain server;
      let live = sorted_snapshot (Server.snapshot server) in
      Server.stop server;
      (* Recovery under the NEW registration set must reproduce the live
         state: the reload checkpointed post-swap, so replay never pushes
         old-policy records through the new configuration. *)
      let fresh = Server.create ~config:(config ~shards) (Pipeline.create [ v1; v2; v3 ]) in
      (match Policyfile.resolve policy_open_calendar with
      | Ok resolved ->
        List.iter
          (fun (principal, partitions) -> Server.register fresh ~principal ~partitions)
          resolved
      | Error e -> Alcotest.failf "resolve: %s" e);
      match Server.recover fresh ~journal:jbase with
      | Error e ->
        Alcotest.failf "recovery after reload: %s" (Disclosure.Service.recovery_error_to_string e)
      | Ok _ ->
        if sorted_snapshot (Server.snapshot fresh) <> live then
          Alcotest.fail "recovered state differs from live post-reload state")

(* --- reload over the wire: zero dropped connections, monotone flip ----- *)

let test_reload_zero_drop () =
  with_sock (fun addr ->
      let shards = 2 in
      let server = make_primary ~shards () in
      Server.start server;
      let listener = Net.Listener.create ~server addr in
      let client = Net.Client.connect addr in
      (* No replication source attached: Pull must be a typed refusal, not
         a dropped connection. *)
      (match Net.Client.pull client ~shard:0 ~seg:1 ~off:0 ~max_bytes:0 with
      | Error { Net.Errors.kind = Net.Errors.Bad_request; _ } -> ()
      | Error e -> Alcotest.failf "pull without source: %s" (Net.Errors.to_string e)
      | Ok _ -> Alcotest.fail "pull without source must be refused");
      let n_queries = 200 in
      let failure = Atomic.make None in
      let streamer =
        Domain.spawn (fun () ->
            let c = Net.Client.connect addr in
            let decisions =
              List.init n_queries (fun _ ->
                  match Net.Client.query c ~principal:"calendar-app" q_meetings with
                  | Ok d -> Some d
                  | Error e ->
                    Atomic.set failure (Some (Net.Errors.to_string e));
                    None)
            in
            Net.Client.close c;
            decisions)
      in
      (* Swap policies mid-stream. *)
      Unix.sleepf 0.005;
      (match Server.reload server policy_open_calendar with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reload: %s" e);
      let decisions = Domain.join streamer in
      (match Atomic.get failure with
      | None -> ()
      | Some e -> Alcotest.failf "connection saw a wire error during reload: %s" e);
      Alcotest.(check int) "zero dropped queries" n_queries (List.length decisions);
      (* Exactly one policy version per query: the decision stream flips
         refused -> answered at most once, never back. *)
      let flipped_back = ref false and seen_answer = ref false in
      List.iter
        (fun d ->
          match d with
          | Some Monitor.Answered -> seen_answer := true
          | Some (Monitor.Refused _) -> if !seen_answer then flipped_back := true
          | None -> ())
        decisions;
      Alcotest.(check bool) "decisions are monotone across the swap" false !flipped_back;
      (* The reload completed before the stream ended or right after: the
         next query is decided by the new policy. *)
      Alcotest.(check bool) "post-reload query answered" true
        (match Net.Client.query client ~principal:"calendar-app" q_meetings with
        | Ok Monitor.Answered -> true
        | _ -> false);
      Net.Client.close client;
      Net.Listener.stop listener;
      Server.stop server)

(* --- graceful drain with a follower attached --------------------------- *)

let test_graceful_drain_with_follower () =
  with_bases (fun jbase mbase ->
      with_sock (fun addr ->
          let shards = 2 in
          let server = make_primary ~journal:jbase ~shards () in
          Server.start server;
          let source = Source.create ~server ~journal:jbase () in
          let listener =
            Net.Listener.create ~extend:(Source.handler source) ~server addr
          in
          let client = Net.Client.connect addr in
          List.iter
            (fun (principal, q) ->
              match Net.Client.query client ~principal q with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "query: %s" (Net.Errors.to_string e))
            history;
          (* Follower connects and pulls a LITTLE, then the operator drains:
             the shipped stream must still flush to the last committed
             record before the socket closes. *)
          let fol = make_follower ~journal:mbase ~shards () in
          let seg, off = Follower.cursor fol ~shard:0 in
          (match Net.Client.pull client ~shard:0 ~seg ~off ~max_bytes:1 with
          | Ok resp -> (
            match Follower.apply_batch fol ~shard:0 resp with
            | Ok () -> ()
            | Error e -> Alcotest.failf "partial apply: %s" e)
          | Error e -> Alcotest.failf "partial pull: %s" (Net.Errors.to_string e));
          Alcotest.(check bool) "not yet caught up" false (Source.caught_up source);
          (* Drain sequence, as `disclosurectl serve` runs it on SIGTERM. *)
          Net.Listener.quiesce listener;
          Server.drain server;
          (* The replication stream still serves until caught up... *)
          Net.Client.ping client;
          catch_up_wire client fol ~shards;
          Alcotest.(check bool) "source flushed to last committed record" true
            (Source.await_caught_up source ~timeout_s:5.0);
          (* ...while new queries are refused fail-closed (Shutting_down is
             a fatal wire error: the server replies, then closes). *)
          (match Net.Client.query client ~principal:"crm-app" q_slots with
          | Error { Net.Errors.kind = Net.Errors.Shutting_down; _ } -> ()
          | Error e -> Alcotest.failf "drain refusal: %s" (Net.Errors.to_string e)
          | Ok _ -> Alcotest.fail "query during drain must be refused");
          Net.Client.close client;
          Net.Listener.stop listener;
          Server.stop server;
          check_family_equal ~what:"drain" jbase mbase ~shards;
          check_states_equal ~what:"drain" server fol ~shards))

(* --- client reconnect backoff ------------------------------------------ *)

let test_connect_retry_backoff () =
  let missing = Filename.temp_file "disclosure-rep" ".sock" in
  Sys.remove missing;
  let addr = Net.Addr.Unix_socket missing in
  let run ~attempts ~jitter ~rand =
    let sleeps = ref [] in
    (try
       ignore
         (Net.Client.connect_retry ~attempts ~delay:0.01 ~max_delay:0.04 ~jitter
            ~sleep:(fun d -> sleeps := d :: !sleeps)
            ~rand addr);
       Alcotest.fail "connect to a missing socket must fail"
     with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ());
    List.rev !sleeps
  in
  (* No jitter: the exact truncated exponential schedule, one sleep per
     retry (attempts - 1 of them), capped at max_delay. *)
  let delays = run ~attempts:5 ~jitter:0.0 ~rand:Random.float in
  Alcotest.(check (list (float 1e-9))) "truncated exponential schedule"
    [ 0.01; 0.02; 0.04; 0.04 ] delays;
  (* Jitter bounds: rand pegged high scales by (1 + j), pegged low by (1 - j). *)
  let high = run ~attempts:3 ~jitter:0.5 ~rand:(fun bound -> bound) in
  Alcotest.(check (list (float 1e-9))) "jitter upper bound" [ 0.015; 0.03 ] high;
  let low = run ~attempts:3 ~jitter:0.5 ~rand:(fun _ -> 0.0) in
  Alcotest.(check (list (float 1e-9))) "jitter lower bound" [ 0.005; 0.01 ] low;
  (* attempts = 1 means a single try: no sleeps at all. *)
  Alcotest.(check (list (float 1e-9))) "single attempt never sleeps" []
    (run ~attempts:1 ~jitter:0.0 ~rand:Random.float);
  (try
     ignore (Net.Client.connect_retry ~attempts:0 addr);
     Alcotest.fail "attempts = 0 must be rejected"
   with Invalid_argument _ -> ())

let test_connect_retry_succeeds_after_refusals () =
  with_sock (fun addr ->
      let server = make_primary ~shards:1 () in
      Server.start server;
      let listener = ref None in
      let failures = ref 0 in
      (* The listener appears only during the second backoff sleep: the
         client must ride out two failed connects and then succeed. *)
      let sleep _ =
        incr failures;
        if !failures = 2 then listener := Some (Net.Listener.create ~server addr)
      in
      let client = Net.Client.connect_retry ~attempts:8 ~delay:0.001 ~jitter:0.0 ~sleep addr in
      Net.Client.ping client;
      Net.Client.close client;
      Alcotest.(check int) "exactly two refused attempts" 2 !failures;
      (match !listener with Some l -> Net.Listener.stop l | None -> ());
      Server.stop server)

(* --- per-follower cursors: two standbys, correct watermarks ------------ *)

(* Pull everything for one named follower, tracking the cursor from the
   responses alone (no Follower.t needed — cursor accounting is entirely
   primary-side). *)
let pull_all source ~follower ~shard =
  let seg = ref 0 and off = ref 0 in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue do
    incr rounds;
    if !rounds > 10_000 then Alcotest.failf "shard %d: pull does not converge" shard;
    match Source.serve_pull ~follower source ~shard ~seg:!seg ~off:!off ~max_bytes:0 with
    | Net.Codec.Batch { data; next_seg; next_off; behind; _ } ->
      if data = "" && behind = 0 then continue := false;
      seg := next_seg;
      off := next_off
    | Net.Codec.Snapshot { next_seg; next_off; _ } ->
      seg := next_seg;
      off := next_off
    | _ -> Alcotest.fail "mismatched pull response"
  done

let test_two_follower_watermarks () =
  with_bases (fun jbase _mbase ->
      let shards = 1 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      run_history server;
      let source = Source.create ~server ~journal:jbase () in
      (* Nobody has pulled: a non-empty journal with no known follower is
         not caught up (no standby holds its bytes). *)
      Alcotest.(check bool) "no followers, non-empty journal" false (Source.caught_up source);
      Alcotest.(check (list string)) "no followers yet" [] (Source.followers source);
      (* Standby "a" catches up fully: the gate opens — every KNOWN
         follower is caught up. *)
      pull_all source ~follower:"a" ~shard:0;
      Alcotest.(check (list string)) "a registered" [ "a" ] (Source.followers source);
      Alcotest.(check bool) "a alone, caught up" true (Source.caught_up source);
      (* Standby "b" appears but only bootstraps (one pull from seg 0) —
         b's cursor lags, so b must hold the gate closed even though a is
         still fully caught up. Before per-follower cursors, b's pull
         OVERWROTE the single shared cursor and this very state reported
         caught_up = true with a standby missing committed bytes. *)
      let bseg, boff =
        match Source.serve_pull ~follower:"b" source ~shard:0 ~seg:0 ~off:0 ~max_bytes:0 with
        | Net.Codec.Snapshot { next_seg; next_off; _ } -> (next_seg, next_off)
        | _ -> Alcotest.fail "bootstrap pull must answer a snapshot"
      in
      (* One record-sized batch: b now holds a strict prefix and has
         reported a positive [behind] — which the primary-side lag gauge
         must surface as the fleet's worst lag. *)
      (match
         Source.serve_pull ~follower:"b" source ~shard:0 ~seg:bseg ~off:boff ~max_bytes:1
       with
      | Net.Codec.Batch { behind; _ } ->
        Alcotest.(check bool) "b is strictly behind" true (behind > 0)
      | _ -> Alcotest.fail "tail pull must answer a batch");
      Alcotest.(check bool) "lag gauge tracks the laggard" true
        (Server.Metrics.gauge_value (Server.metrics server) ~shard:0
           Server.Metrics.Replication_lag
        > 0);
      Alcotest.(check (list string)) "both registered" [ "a"; "b" ] (Source.followers source);
      Alcotest.(check bool) "b lags, gate closed" false (Source.caught_up source);
      (* The merged cursor is the LEAST-advanced one — what the slowest
         standby already holds, i.e. b's, strictly behind the watermark. *)
      (match (Source.cursors source).(0), Server.journal_position server ~shard:0 with
      | Some (cseg, coff), Some (aseg, abytes) ->
        Alcotest.(check bool) "merged cursor is the laggard's" true
          (cseg < aseg || (cseg = aseg && coff < abytes))
      | None, _ -> Alcotest.fail "merged cursor must exist once anyone pulled"
      | _, None -> Alcotest.fail "journaled shard must report a position");
      (* b catches up: gate reopens. *)
      pull_all source ~follower:"b" ~shard:0;
      Alcotest.(check bool) "both caught up" true (Source.caught_up source);
      (* More traffic: BOTH must re-pull before the gate reopens — one
         fast standby must not mask the other. *)
      run_history server;
      Alcotest.(check bool) "new traffic closes the gate" false (Source.caught_up source);
      pull_all source ~follower:"a" ~shard:0;
      Alcotest.(check bool) "a alone is not enough" false (Source.caught_up source);
      (* Decommission b instead of catching it up: forget drops its cursor
         and the gate reflects the remaining fleet. *)
      Source.forget source ~follower:"b";
      Alcotest.(check (list string)) "b forgotten" [ "a" ] (Source.followers source);
      Alcotest.(check bool) "a-only fleet caught up" true (Source.caught_up source);
      Server.stop server)

(* --- watermarks in stats and Prometheus -------------------------------- *)

let test_stats_and_prometheus () =
  with_bases (fun jbase mbase ->
      let shards = 2 in
      let server = make_primary ~journal:jbase ~shards () in
      Server.start server;
      run_history server;
      let source = Source.create ~server ~journal:jbase () in
      let fol = make_follower ~journal:mbase ~shards () in
      catch_up source fol ~shards;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      let stats = Server.stats_json server in
      List.iter
        (fun needle ->
          if not (contains stats needle) then
            Alcotest.failf "stats_json is missing %S" needle)
        [ "\"journal\""; "\"segment\""; "\"offset\"" ];
      let prom = Server.prometheus server in
      List.iter
        (fun needle ->
          if not (contains prom needle) then Alcotest.failf "prometheus is missing %S" needle)
        [ "journal_offset"; "journal_segment"; "rep_pulls"; "rep_shipped_bytes" ];
      (* The committed watermark in stats matches the shard's position. *)
      (match Server.journal_position server ~shard:0 with
      | Some (seg, off) ->
        if not (contains stats (Printf.sprintf "\"segment\": %d" seg))
           && not (contains stats (Printf.sprintf "\"segment\":%d" seg))
        then Alcotest.failf "stats_json journal array misses segment %d" seg;
        ignore off
      | None -> Alcotest.fail "journaled shard must report a position");
      let fstats = Follower.stats_json fol in
      List.iter
        (fun needle ->
          if not (contains fstats needle) then
            Alcotest.failf "follower stats_json is missing %S" needle)
        [ "\"role\""; "follower"; "\"journal\""; "\"applied\""; "\"lag_bytes\"" ];
      let fprom = Server.Metrics.to_prometheus (Follower.metrics fol) in
      List.iter
        (fun needle ->
          if not (contains fprom needle) then
            Alcotest.failf "follower prometheus is missing %S" needle)
        [ "replication_lag"; "rep_applied_records" ];
      Server.stop server)

let () =
  Alcotest.run "disclosure-replicate"
    [
      ( "codec",
        [ Alcotest.test_case "pull/batch/snapshot round trips" `Quick test_codec_roundtrip ] );
      ( "replication",
        [
          Alcotest.test_case "steady state is bit-identical" `Quick test_steady_state;
          Alcotest.test_case "tiered follower: bounded, identical, promotable"
            `Quick test_tiered_follower;
          Alcotest.test_case "poll_once catches up in one pass" `Quick test_poll_once_catches_up;
          Alcotest.test_case "checkpoint bootstrap and re-bootstrap" `Quick
            test_checkpoint_bootstrap;
        ] );
      ( "failover",
        [
          Alcotest.test_case "promote at every record boundary" `Slow
            test_failover_every_record_boundary;
          Alcotest.test_case "follower resumes over a torn mirror" `Slow
            test_follower_resume_torn_mirror;
          Alcotest.test_case "torn and flipped batches fail closed" `Slow
            test_tamper_every_offset;
        ] );
      ( "reload",
        [
          Alcotest.test_case "flip, carry-over, reset, invalid no-op" `Quick
            test_reload_semantics;
          Alcotest.test_case "reload then recovery equivalence" `Quick
            test_reload_recovery_equivalence;
          Alcotest.test_case "zero dropped connections over the wire" `Quick
            test_reload_zero_drop;
        ] );
      ( "drain",
        [
          Alcotest.test_case "graceful drain flushes the follower" `Quick
            test_graceful_drain_with_follower;
        ] );
      ( "client",
        [
          Alcotest.test_case "reconnect backoff schedule and jitter" `Quick
            test_connect_retry_backoff;
          Alcotest.test_case "reconnect succeeds after refusals" `Quick
            test_connect_retry_succeeds_after_refusals;
        ] );
      ( "cursors",
        [
          Alcotest.test_case "two standbys, per-follower watermarks" `Quick
            test_two_follower_watermarks;
        ] );
      ( "observability",
        [ Alcotest.test_case "watermarks in stats and prometheus" `Quick test_stats_and_prometheus ] );
    ]
