(* Tests for the order-generic labeling algorithms (NaïveLabel, GLBLabel,
   LabelGen) and the generating-set machinery of Section 4. *)

module Order = Disclosure.Order
module Labeler = Disclosure.Labeler
module Generating = Disclosure.Generating
module Glb = Disclosure.Glb
module RS = Disclosure.Rewrite_single

let ord = Order.rewriting

let glb = Glb.of_sets

(* F = the GLB closure of the singleton Figure 4 projections: a label family
   over Contacts that induces a labeler. *)
let fig4_f =
  [
    [ Helpers.v3 ];
    [ Helpers.v6 ];
    [ Helpers.v7 ];
    [ Helpers.v8 ];
    [ Helpers.v9 ];
    [ Helpers.v10 ];
    [ Helpers.v11 ];
    [ Helpers.v12 ];
  ]

let check_label name expected actual =
  match actual with
  | None -> Alcotest.failf "%s: expected a label, got top" name
  | Some l -> Helpers.check_bool name true (Order.equiv ord expected l)

let test_naive_label () =
  check_label "naive: V9 labels with V9" [ Helpers.v9 ]
    (Labeler.naive_label ~order:ord ~f:fig4_f [ Helpers.v9 ]);
  check_label "naive: V6 labels with V6" [ Helpers.v6 ]
    (Labeler.naive_label ~order:ord ~f:fig4_f [ Helpers.v6 ]);
  (* A view over another relation is above everything in F: top. *)
  Helpers.check_bool "naive: foreign view is top" true
    (Labeler.naive_label ~order:ord ~f:fig4_f [ Helpers.v1 ] = None)

let test_naive_label_minimality () =
  (* The label must be the least element above the input: for V12 that is V12
     itself, not any of the larger projections. *)
  check_label "naive: V12 labels minimally" [ Helpers.v12 ]
    (Labeler.naive_label ~order:ord ~f:fig4_f [ Helpers.v12 ])

let test_glb_label_matches_naive () =
  (* On a family closed under GLB, GLBLabel and NaïveLabel agree. *)
  let inputs = List.map (fun v -> [ v ]) Helpers.fig4_universe in
  List.iter
    (fun w ->
      let n = Labeler.naive_label ~order:ord ~f:fig4_f w in
      let g = Labeler.glb_label ~order:ord ~glb ~fd:fig4_f w in
      match n, g with
      | None, None -> ()
      | Some n, Some g -> Helpers.check_bool "naive = glb" true (Order.equiv ord n g)
      | _ -> Alcotest.fail "naive and glb disagree about top")
    inputs

let test_glb_label_on_generating_set () =
  (* Using only the four maximal projections as Fd still labels V9..V12
     correctly: the GLB reconstructs them (Example 4.4). *)
  let fd = [ [ Helpers.v3 ]; [ Helpers.v6 ]; [ Helpers.v7 ]; [ Helpers.v8 ] ] in
  check_label "V9 from Fd" [ Helpers.v9 ]
    (Labeler.glb_label ~order:ord ~glb ~fd [ Helpers.v9 ]);
  check_label "V10 from Fd" [ Helpers.v10 ]
    (Labeler.glb_label ~order:ord ~glb ~fd [ Helpers.v10 ]);
  check_label "V11 from Fd" [ Helpers.v11 ]
    (Labeler.glb_label ~order:ord ~glb ~fd [ Helpers.v11 ]);
  check_label "V12 from Fd" [ Helpers.v12 ]
    (Labeler.glb_label ~order:ord ~glb ~fd [ Helpers.v12 ])

let test_label_gen () =
  let fgen = [ [ Helpers.v3 ]; [ Helpers.v6 ]; [ Helpers.v7 ]; [ Helpers.v8 ] ] in
  (* Labeling the pair {V9, V8} unions the per-view labels. *)
  check_label "union of labels" [ Helpers.v9; Helpers.v8 ]
    (Labeler.label_gen ~order:ord ~glb ~fgen [ Helpers.v9; Helpers.v8 ]);
  Helpers.check_bool "top propagates" true
    (Labeler.label_gen ~order:ord ~glb ~fgen [ Helpers.v9; Helpers.v1 ] = None)

let test_labeler_axioms () =
  (* Definition 3.4 over the Figure 4 universe with the projection family. *)
  let label w = Labeler.glb_label ~order:ord ~glb ~fd:fig4_f w in
  let leq_label a b =
    match a, b with
    | _, None -> true (* everything is below top *)
    | None, Some _ -> false
    | Some a, Some b -> Order.leq ord a b
  in
  let inputs = List.map (fun v -> [ v ]) Helpers.fig4_universe in
  List.iter
    (fun w ->
      (* (b) fixpoints: elements of F label as themselves. *)
      (match label w with
      | Some l when List.exists (Order.equiv ord w) fig4_f ->
        Helpers.check_bool "axiom (b) fixpoint" true (Order.equiv ord l w)
      | Some _ -> ()
      | None -> Alcotest.fail "projection family labels its own universe");
      (* (c) never underestimates. *)
      (match label w with
      | Some l -> Helpers.check_bool "axiom (c)" true (Order.leq ord w l)
      | None -> ());
      (* (d) monotone. *)
      List.iter
        (fun w' ->
          if Order.leq ord w w' then
            Helpers.check_bool "axiom (d)" true (leq_label (label w) (label w')))
        inputs)
    inputs

let test_plus_label () =
  let fgen = [ [ Helpers.v3 ]; [ Helpers.v6 ]; [ Helpers.v7 ]; [ Helpers.v8 ] ] in
  let plus v = Labeler.plus_label ~order:ord ~fgen v in
  (* Example 6.1: ℓ⁺(V9) = {V3, V6, V7}; ℓ⁺(V12) = all four. *)
  Helpers.check_int "ℓ⁺(V9) size" 3 (List.length (plus Helpers.v9));
  Helpers.check_int "ℓ⁺(V12) size" 4 (List.length (plus Helpers.v12));
  Helpers.check_int "ℓ⁺(V3) size" 1 (List.length (plus Helpers.v3));
  (* ℓ(V12) ⪯ ℓ(V9) iff ℓ⁺(V12) ⊇ ℓ⁺(V9). *)
  let subset a b = List.for_all (fun x -> List.memq x b) a in
  Helpers.check_bool "superset comparison" true
    (subset (plus Helpers.v9) (plus Helpers.v12))

let test_glb_closure () =
  (* Theorem 4.5: closing the four projections regenerates the full family. *)
  let g = [ [ Helpers.v3 ]; [ Helpers.v6 ]; [ Helpers.v7 ]; [ Helpers.v8 ] ] in
  let closed = Generating.glb_closure ~order:ord ~glb g in
  Helpers.check_bool "closed" true (Generating.is_glb_closed ~order:ord ~glb closed);
  List.iter
    (fun v ->
      Helpers.check_bool "closure contains all projections" true
        (List.exists (Order.equiv ord [ v ]) closed))
    Helpers.fig4_universe

let test_induces_labeler () =
  Helpers.check_bool "closed family with top induces" true
    (Generating.induces_labeler ~order:ord ~glb ~top:[ Helpers.v3 ] fig4_f);
  (* Example 3.5: the power set of {V2, V4} misses the GLB ⇓V5. *)
  let f_bad = [ []; [ Helpers.v2 ]; [ Helpers.v4 ]; [ Helpers.v2; Helpers.v4 ]; [ Helpers.v1 ] ] in
  Helpers.check_bool "Example 3.5 family does not induce" false
    (Generating.induces_labeler ~order:ord ~glb ~top:[ Helpers.v1 ] f_bad)

let test_minimal_downward_generating () =
  (* Theorem 4.3 / Example 4.4: V9..V12 are redundant given V3, V6, V7, V8. *)
  let fd = Generating.minimal_downward_generating ~order:ord ~glb fig4_f in
  Helpers.check_int "four generators survive" 4 (List.length fd);
  List.iter
    (fun v ->
      Helpers.check_bool "maximal projections kept" true
        (List.exists (Order.equiv ord [ v ]) fd))
    [ Helpers.v3; Helpers.v6; Helpers.v7; Helpers.v8 ];
  Helpers.check_bool "still generates F" true
    (Generating.is_downward_generating ~order:ord ~glb ~fd ~f:fig4_f)

let test_is_downward_generating_negative () =
  let fd = [ [ Helpers.v6 ]; [ Helpers.v7 ] ] in
  Helpers.check_bool "cannot regenerate V3" false
    (Generating.is_downward_generating ~order:ord ~glb ~fd ~f:[ [ Helpers.v3 ] ])

let suite =
  [
    Alcotest.test_case "naive label" `Quick test_naive_label;
    Alcotest.test_case "naive label minimality" `Quick test_naive_label_minimality;
    Alcotest.test_case "GLBLabel matches naive" `Quick test_glb_label_matches_naive;
    Alcotest.test_case "GLBLabel on generating set" `Quick test_glb_label_on_generating_set;
    Alcotest.test_case "LabelGen" `Quick test_label_gen;
    Alcotest.test_case "labeler axioms (Def 3.4)" `Quick test_labeler_axioms;
    Alcotest.test_case "ℓ⁺ labels (Example 6.1)" `Quick test_plus_label;
    Alcotest.test_case "GLB closure (Thm 4.5)" `Quick test_glb_closure;
    Alcotest.test_case "labeler existence (Thm 3.7)" `Quick test_induces_labeler;
    Alcotest.test_case "minimal downward generating set (Thm 4.3)" `Quick
      test_minimal_downward_generating;
    Alcotest.test_case "downward generation negative" `Quick test_is_downward_generating_negative;
  ]
