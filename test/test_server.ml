(* Tests for the sharded multicore serving layer (lib/server). A separate
   executable from the main suite: these tests spawn domains, and the domain
   count is driven by the SERVER_DOMAINS environment variable so the CI
   alias can sweep 1, 2, and 4 (default 2).

   The headline property is sequential equivalence: for any history, every
   principal's decision sequence through the server is identical to replaying
   the same queries through a single-threaded Disclosure.Service — sharding,
   mailboxes, and the label cache must be invisible in the decisions. *)

module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Pipeline = Disclosure.Pipeline
module Guard = Disclosure.Guard
module Sview = Disclosure.Sview

let domains =
  match Sys.getenv_opt "SERVER_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> failwith ("bad SERVER_DOMAINS: " ^ s))
  | None -> 2

let pq = Cq.Parser.query_exn

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"

let pipeline () = Pipeline.create [ v1; v2; v3 ]

let principals = [| "calendar-app"; "crm-app"; "hr-app"; "mail-app"; "todo-app" |]

let register_all register =
  register ~principal:"calendar-app" ~partitions:[ ("default", [ v2 ]) ];
  register ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  register ~principal:"hr-app" ~partitions:[ ("default", [ v3 ]) ];
  register ~principal:"mail-app" ~partitions:[ ("default", [ v1; v3 ]) ];
  register ~principal:"todo-app" ~partitions:[ ("default", [ v2; v3 ]) ]

let make_server ?journal ?(cache_capacity = 256) ?(mailbox_capacity = 1024)
    ?(checkpoint_every = 0) ?(segment_bytes = 0) ?(group_commit = false) () =
  let server =
    Server.create ?journal
      ~config:
        { Server.domains; mailbox_capacity; cache_capacity; checkpoint_every;
          segment_bytes; drain = Server.default_config.Server.drain; group_commit;
          resident = None }
      (pipeline ())
  in
  register_all (fun ~principal ~partitions -> Server.register server ~principal ~partitions);
  server

let make_service ?journal () =
  let service = Service.create ?journal (pipeline ()) in
  register_all (fun ~principal ~partitions ->
      Service.register service ~principal ~partitions);
  service

let queries =
  [|
    pq "Q(x) :- Meetings(x, y)";
    pq "Q(a) :- Meetings(a, b)";
    pq "Q(x, y) :- Meetings(x, y)";
    pq "Q(y) :- Meetings(x, y)";
    pq "Q(x, y, z) :- Contacts(x, y, z)";
    pq "Q(x) :- Contacts(x, y, z)";
    pq "Q(x) :- Meetings(x, y), Contacts(y, e, p)";
    pq "Q(x) :- Meetings(x, y), Meetings(x, z)";
    pq "Q() :- Unknown(u)";
  |]

let random_history rng ~steps =
  List.init steps (fun _ ->
      ( principals.(Random.State.int rng (Array.length principals)),
        queries.(Random.State.int rng (Array.length queries)) ))

(* Per-principal decision sequences, in submission order. *)
let group_by_principal pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (principal, decision) ->
      let prev = Option.value (Hashtbl.find_opt tbl principal) ~default:[] in
      Hashtbl.replace tbl principal (decision :: prev))
    pairs;
  Array.to_list principals
  |> List.map (fun p ->
         (p, List.rev (Option.value (Hashtbl.find_opt tbl p) ~default:[])))

let sequences_equal a b =
  List.for_all2
    (fun (p, ds) (p', ds') ->
      String.equal p p'
      && List.length ds = List.length ds'
      && List.for_all2 Monitor.decision_equal ds ds')
    a b

(* --- sequential equivalence ------------------------------------------- *)

let run_history_on_server server history =
  let tickets =
    List.map
      (fun (principal, q) -> (principal, Server.submit server ~principal q))
      history
  in
  List.map (fun (principal, ticket) -> (principal, Server.await ticket)) tickets

let run_history_on_service service history =
  List.map
    (fun (principal, q) -> (principal, Service.submit service ~principal q))
    history

let test_sequential_equivalence () =
  let rng = Random.State.make [| 0xACE |] in
  for _history = 1 to 120 do
    let history = random_history rng ~steps:(1 + Random.State.int rng 20) in
    let server = make_server () in
    Server.start server;
    let server_decisions = run_history_on_server server history in
    Server.drain server;
    let server_snapshot = Server.snapshot server in
    Server.stop server;
    let service = make_service () in
    let service_decisions = run_history_on_service service history in
    check_bool "per-principal decision sequences match single-threaded replay" true
      (sequences_equal
         (group_by_principal server_decisions)
         (group_by_principal service_decisions));
    check_bool "final monitor states match single-threaded replay" true
      (Service.snapshot service = server_snapshot)
  done

(* The same equivalence with the cache disabled: isolates sharding/mailbox
   effects from cache effects. *)
let test_sequential_equivalence_uncached () =
  let rng = Random.State.make [| 0xBEE |] in
  for _history = 1 to 40 do
    let history = random_history rng ~steps:(1 + Random.State.int rng 20) in
    let server = make_server ~cache_capacity:0 () in
    Server.start server;
    let decisions = run_history_on_server server history in
    Server.drain server;
    Server.stop server;
    let service = make_service () in
    let expected = run_history_on_service service history in
    check_bool "uncached decision sequences match" true
      (sequences_equal (group_by_principal decisions) (group_by_principal expected))
  done

(* A tiny LRU cache forces constant eviction; decisions must not change. *)
let test_equivalence_under_eviction () =
  let rng = Random.State.make [| 0xE51C7 |] in
  let history = random_history rng ~steps:200 in
  let server = make_server ~cache_capacity:2 () in
  Server.start server;
  let decisions = run_history_on_server server history in
  Server.drain server;
  let evictions = (Server.cache_stats server).Server.Shard.evictions in
  Server.stop server;
  let service = make_service () in
  let expected = run_history_on_service service history in
  check_bool "evicting cache still matches" true
    (sequences_equal (group_by_principal decisions) (group_by_principal expected));
  check_bool "evictions actually happened" true (evictions > 0)

let test_cache_hits_across_variants () =
  let server = make_server () in
  Server.start server;
  (* Same query three ways: verbatim, alpha-renamed, reordered+redundant. *)
  List.iter
    (fun q ->
      check_bool "variant answered" true
        (Server.submit_sync server ~principal:"calendar-app" q = Monitor.Answered))
    [
      pq "Q(x) :- Meetings(x, y)";
      pq "Q(x) :- Meetings(x, y)";
      pq "Q(a) :- Meetings(a, b)";
      pq "Q(a) :- Meetings(a, b), Meetings(a, c)";
    ];
  Server.drain server;
  let stats = Server.cache_stats server in
  let metrics = Server.metrics server in
  Server.stop server;
  check_bool "repeats hit the cache" true (stats.Server.Shard.hits >= 3);
  check_int "only the first labeling missed" 1
    (Server.Metrics.count metrics Server.Metrics.Cache_miss)

(* --- overload ---------------------------------------------------------- *)

(* Submitting before [start] queues deterministically: with capacity 1, the
   second query for the same shard must be shed as Refused Overload, with
   the shed principal's monitor left bit-identical. *)
let test_overload_sheds_fail_closed () =
  let server = make_server ~mailbox_capacity:1 ~cache_capacity:0 () in
  let before = Server.snapshot server in
  let q = pq "Q(x) :- Meetings(x, y)" in
  let t1 = Server.submit server ~principal:"calendar-app" q in
  let t2 = Server.submit server ~principal:"calendar-app" q in
  (match Server.Ivar.peek t2 with
  | Some (Monitor.Refused Guard.Overload) -> ()
  | Some d -> Alcotest.failf "expected Refused Overload, got %a" Monitor.pp_decision d
  | None -> Alcotest.fail "shed ticket must resolve immediately");
  check_bool "shed decision leaves every monitor bit-identical" true
    (Server.snapshot server = before);
  let metrics = Server.metrics server in
  check_int "overload counted" 1 (Server.Metrics.count metrics Server.Metrics.Overloaded);
  Server.start server;
  check_bool "queued query still decided" true
    (Server.await t1 = Monitor.Answered);
  Server.drain server;
  check_bool "only the accepted query reached the monitor" true
    (Server.stats server ~principal:"calendar-app" = (1, 0));
  Server.stop server

let test_overload_refusal_tag () =
  check_bool "overload tag roundtrips" true
    (Guard.refusal_of_tag (Guard.refusal_to_tag Guard.Overload) = Some Guard.Overload);
  check_bool "overload is not policy" true (not (Guard.refusal_equal Guard.Overload Guard.Policy))

(* --- journal segments and recovery ------------------------------------- *)

let with_tmp_base f =
  let base = Filename.temp_file "disclosure-server" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      let rm f = try Sys.remove f with Sys_error _ -> () in
      rm base;
      (* Each shard base can grow rotated segments and a checkpoint. *)
      for i = 0 to 7 do
        let shard = Printf.sprintf "%s.shard%d" base i in
        rm shard;
        rm (shard ^ ".ckpt");
        rm (shard ^ ".ckpt.tmp");
        for n = 1 to 64 do
          rm (Printf.sprintf "%s.%d" shard n)
        done
      done)
    (fun () -> f base)

let test_segmented_recovery () =
  with_tmp_base (fun base ->
      let rng = Random.State.make [| 0x10C |] in
      let history = random_history rng ~steps:60 in
      let server = make_server ~journal:base () in
      Server.start server;
      ignore (run_history_on_server server history);
      Server.drain server;
      let live = Server.snapshot server in
      Server.stop server;
      (* Each shard wrote its own segment. *)
      let segments =
        List.init domains (fun i -> Printf.sprintf "%s.shard%d" base i)
      in
      List.iter
        (fun s -> check_bool ("segment exists: " ^ s) true (Sys.file_exists s))
        segments;
      (* A fresh server over the same deployment recovers bit-identically. *)
      let fresh = make_server () in
      (match Server.recover fresh ~journal:base with
      | Ok n -> check_int "all decisions replayed" (List.length history) n
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      check_bool "recovered state = live state" true (Server.snapshot fresh = live);
      let m = Server.metrics fresh in
      check_int "one recovery per shard counted" domains
        (Server.Metrics.count m Server.Metrics.Recoveries);
      check_int "replayed records counted" (List.length history)
        (Server.Metrics.count m Server.Metrics.Recovered_records);
      Server.stop fresh)

let test_recovery_tolerates_torn_segment () =
  with_tmp_base (fun base ->
      let server = make_server ~journal:base () in
      Server.start server;
      check_bool "setup answered" true
        (Server.submit_sync server ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)")
        = Monitor.Answered);
      Server.drain server;
      let live = Server.snapshot server in
      Server.stop server;
      (* Simulate a crash mid-append on shard 0's segment: the record is cut
         off inside the principal name, before the first tab. *)
      let victim = base ^ ".shard0" in
      let oc = open_out_gen [ Open_append ] 0o644 victim in
      output_string oc "calendar-ap";
      close_out oc;
      let fresh = make_server () in
      (match Server.recover fresh ~journal:base with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "torn final segment line must be tolerated: %s"
          (Service.recovery_error_to_string e));
      check_bool "recovered state ignores the torn line" true
        (Server.snapshot fresh = live);
      Server.stop fresh)

(* A running server checkpoints every shard via control messages; recovery
   then restores per-shard checkpoints and replays only the tails. *)
let test_checkpointed_server_recovery () =
  with_tmp_base (fun base ->
      let rng = Random.State.make [| 0xCA47 |] in
      let history = random_history rng ~steps:40 in
      let tail = random_history rng ~steps:11 in
      let server = make_server ~journal:base ~segment_bytes:512 () in
      Server.start server;
      ignore (run_history_on_server server history);
      Server.drain server;
      (match Server.checkpoint server with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      ignore (run_history_on_server server tail);
      Server.drain server;
      let live = Server.snapshot server in
      let m = Server.metrics server in
      check_bool "checkpoints counted" true
        (Server.Metrics.count m Server.Metrics.Checkpoints >= domains);
      check_bool "rotations counted" true
        (Server.Metrics.count m Server.Metrics.Rotations >= 1);
      Server.stop server;
      let fresh = make_server () in
      (match Server.recover fresh ~journal:base with
      | Ok n ->
        check_bool "only the tails replay" true (n <= List.length tail)
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      check_bool "checkpoint + tail = live" true (Server.snapshot fresh = live);
      Server.stop fresh)

(* The automatic cadence: every shard checkpoints itself as it processes
   decisions, with no cross-shard coordination, and decisions are
   unaffected. *)
let test_auto_checkpoint_equivalence () =
  with_tmp_base (fun base ->
      let rng = Random.State.make [| 0xAD0C |] in
      let history = random_history rng ~steps:60 in
      let server = make_server ~journal:base ~checkpoint_every:5 () in
      Server.start server;
      let decisions = run_history_on_server server history in
      Server.drain server;
      let live = Server.snapshot server in
      let m = Server.metrics server in
      check_bool "automatic checkpoints happened" true
        (Server.Metrics.count m Server.Metrics.Checkpoints > 0);
      Server.stop server;
      let service = make_service () in
      let expected = run_history_on_service service history in
      check_bool "auto-checkpointing never changes decisions" true
        (sequences_equal (group_by_principal decisions) (group_by_principal expected));
      let fresh = make_server () in
      (match Server.recover fresh ~journal:base with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      check_bool "recovered = live under auto checkpoints" true
        (Server.snapshot fresh = live);
      Server.stop fresh)

(* --- group commit ------------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* One journaled pass over [history] with every query enqueued before
   [start]: the workers then dequeue full [drain]-sized batches, so the
   group-commit flush count is deterministic. Decisions are awaited after
   [drain] (group commit fills tickets only at each batch's covering
   flush). *)
let journaled_pass ~group_commit base history =
  let server = make_server ~journal:base ~group_commit () in
  let tickets =
    List.map (fun (principal, q) -> Server.submit server ~principal q) history
  in
  Server.start server;
  Server.drain server;
  let decisions =
    List.map2 (fun (principal, _) t -> (principal, Server.await t)) history tickets
  in
  let snapshot = Server.snapshot server in
  let flushes = Array.fold_left ( + ) 0 (Server.flush_counts server) in
  Server.stop server;
  let journals =
    List.init domains (fun i -> read_file (Printf.sprintf "%s.shard%d" base i))
  in
  (decisions, snapshot, flushes, journals)

(* The group-commit contract, differentially: against per-decision commits
   over the same history, decisions, monitor states, and journal bytes are
   all bit-identical, recovery restores the same state — and the observable
   difference is strictly fewer fsyncs. *)
let test_group_commit_differential () =
  with_tmp_base (fun base_off ->
      with_tmp_base (fun base_on ->
          let rng = Random.State.make [| 0x6C07 |] in
          let history = random_history rng ~steps:200 in
          let dec_off, snap_off, flushes_off, journals_off =
            journaled_pass ~group_commit:false base_off history
          in
          let dec_on, snap_on, flushes_on, journals_on =
            journaled_pass ~group_commit:true base_on history
          in
          check_bool "decision sequences identical" true
            (sequences_equal (group_by_principal dec_off) (group_by_principal dec_on));
          check_bool "monitor snapshots identical" true (snap_off = snap_on);
          List.iteri
            (fun i (off, on) ->
              check_bool (Printf.sprintf "shard %d journal bit-identical" i) true
                (String.equal off on))
            (List.combine journals_off journals_on);
          check_bool "per-decision mode flushed at least once per record" true
            (flushes_off >= List.length history * 9 / 10);
          check_bool
            (Printf.sprintf "group commit flushes strictly fewer (%d < %d)" flushes_on
               flushes_off)
            true
            (flushes_on < flushes_off);
          (* Batches are bounded by [drain], so at most ceil(records/drain)
             flushes per shard plus slack for short trailing batches. *)
          let drain = Server.default_config.Server.drain in
          let bound = ((List.length history + drain - 1) / drain) + (2 * domains) in
          check_bool
            (Printf.sprintf "flush count bounded by batching (%d <= %d)" flushes_on bound)
            true (flushes_on <= bound);
          (* The group-commit journal recovers to the live state. *)
          let fresh = make_server () in
          (match Server.recover fresh ~journal:base_on with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
          check_bool "recovered from group-commit journal = live state" true
            (Server.snapshot fresh = snap_on);
          Server.stop fresh))

(* --- lifecycle and misc ------------------------------------------------ *)

let test_unknown_principal () =
  let server = make_server () in
  Alcotest.check_raises "unknown" (Service.Unknown_principal "nobody") (fun () ->
      ignore (Server.submit server ~principal:"nobody" (pq "Q(x) :- Meetings(x, y)")));
  Server.stop server

let test_register_after_start_rejected () =
  let server = make_server () in
  Server.start server;
  (try
     Server.register server ~principal:"late-app" ~partitions:[ ("default", [ v2 ]) ];
     Alcotest.fail "registration after start must be rejected"
   with Invalid_argument _ -> ());
  Server.stop server

let test_stop_before_start_resolves_tickets () =
  let server = make_server () in
  let t = Server.submit server ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)") in
  Server.stop server;
  match Server.await t with
  | Monitor.Refused (Guard.Fault _) -> ()
  | d -> Alcotest.failf "expected a fault refusal, got %a" Monitor.pp_decision d

let test_metrics_accounting () =
  let server = make_server () in
  Server.start server;
  let history =
    List.concat_map
      (fun _ -> [ ("calendar-app", queries.(0)); ("crm-app", queries.(4)) ])
      [ 1; 2; 3 ]
  in
  ignore (run_history_on_server server history);
  Server.drain server;
  let m = Server.metrics server in
  Server.stop server;
  let module M = Server.Metrics in
  check_int "submitted" 6 (M.count m M.Submitted);
  check_int "all decided" 6 (M.count m M.Answered + M.count m M.Refused);
  check_bool "decide stage observed" true ((M.histogram m M.Decide).M.count > 0);
  check_bool "json shape" true
    (let json = M.to_json m in
     String.length json > 0 && json.[0] = '{' && String.length json > 50)

(* --- mailbox, cache, ivar unit tests ----------------------------------- *)

let test_mailbox () =
  let mb = Server.Mailbox.create ~capacity:2 in
  check_bool "push 1" true (Server.Mailbox.try_push mb 1);
  check_bool "push 2" true (Server.Mailbox.try_push mb 2);
  check_bool "push 3 refused at capacity" false (Server.Mailbox.try_push mb 3);
  check_bool "pop 1" true (Server.Mailbox.pop mb = Some 1);
  check_bool "push after pop" true (Server.Mailbox.try_push mb 4);
  Server.Mailbox.close mb;
  check_bool "push after close refused" false (Server.Mailbox.try_push mb 5);
  check_bool "drains after close" true (Server.Mailbox.pop mb = Some 2);
  check_bool "drains after close (2)" true (Server.Mailbox.pop mb = Some 4);
  check_bool "empty after drain" true (Server.Mailbox.pop mb = None);
  Alcotest.check_raises "capacity validated" (Invalid_argument
      "Mailbox.create: capacity must be >= 1") (fun () ->
      ignore (Server.Mailbox.create ~capacity:0))

let test_mailbox_pop_batch () =
  let module Mb = Server.Mailbox in
  (* Queue order, batch cap, and remainder batches. *)
  let mb = Mb.create ~capacity:16 in
  for i = 1 to 10 do
    check_bool "push" true (Mb.try_push mb i)
  done;
  check_bool "first batch in order" true (Mb.pop_batch mb ~max:4 = [ 1; 2; 3; 4 ]);
  check_bool "second batch" true (Mb.pop_batch mb ~max:4 = [ 5; 6; 7; 8 ]);
  check_bool "short final batch" true (Mb.pop_batch mb ~max:4 = [ 9; 10 ]);
  (* A lone message dequeues immediately — no waiting to fill a batch. *)
  check_bool "push lone" true (Mb.try_push mb 11);
  check_bool "lone message" true (Mb.pop_batch mb ~max:64 = [ 11 ]);
  (* Close semantics mirror pop's: drain the backlog, then []. *)
  check_bool "push 12" true (Mb.try_push mb 12);
  check_bool "push 13" true (Mb.try_push mb 13);
  Mb.close mb;
  check_bool "drains after close" true (Mb.pop_batch mb ~max:64 = [ 12; 13 ]);
  check_bool "empty after drain" true (Mb.pop_batch mb ~max:64 = []);
  Alcotest.check_raises "max validated"
    (Invalid_argument "Mailbox.pop_batch: max must be >= 1") (fun () ->
      ignore (Mb.pop_batch (Mb.create ~capacity:1) ~max:0));
  (* A draining batch must wake BLOCKED producers (broadcast, not one
     signal per message): fill, block two pushers on other domains, drain. *)
  let mb = Mb.create ~capacity:2 in
  check_bool "fill 1" true (Mb.try_push mb 1);
  check_bool "fill 2" true (Mb.try_push mb 2);
  let pushers = Array.init 2 (fun i -> Domain.spawn (fun () -> Mb.push mb (10 + i))) in
  (* Both producers are (about to be) parked on the not_full condition. *)
  let first = Mb.pop_batch mb ~max:2 in
  check_bool "drained the backlog" true (first = [ 1; 2 ]);
  check_bool "both producers complete" true
    (Array.for_all (fun d -> Domain.join d) pushers);
  let rest = List.sort compare (Mb.pop_batch mb ~max:4) in
  check_bool "both blocked pushes delivered" true (rest = [ 10; 11 ])

let test_label_cache_lru () =
  let c = Server.Label_cache.create ~capacity:2 in
  Server.Label_cache.add c "a" 1;
  Server.Label_cache.add c "b" 2;
  check_bool "hit a" true (Server.Label_cache.find c "a" = Some 1);
  (* "b" is now least-recently-used; adding "c" evicts it. *)
  Server.Label_cache.add c "c" 3;
  check_bool "b evicted" true (Server.Label_cache.find c "b" = None);
  check_bool "a survives" true (Server.Label_cache.find c "a" = Some 1);
  check_bool "c present" true (Server.Label_cache.find c "c" = Some 3);
  check_int "hits" 3 (Server.Label_cache.hits c);
  check_int "misses" 1 (Server.Label_cache.misses c);
  check_int "evictions" 1 (Server.Label_cache.evictions c);
  check_int "length" 2 (Server.Label_cache.length c)

(* Regression: repeated hits on the hottest key must take the fast path and
   leave the recency list alone. The original check compared [t.head] against
   a freshly allocated [Some node], which is always physically unequal, so
   every hit churned the list. *)
let test_label_cache_hot_key_no_churn () =
  let c = Server.Label_cache.create ~capacity:4 in
  Server.Label_cache.add c "hot" 1;
  Server.Label_cache.add c "cold" 2;
  (* "cold" is at the head; the first "hot" hit is a genuine promotion. *)
  check_bool "warm up" true (Server.Label_cache.find c "hot" = Some 1);
  check_int "one promotion to the front" 1 (Server.Label_cache.promotions c);
  for _ = 1 to 100 do
    ignore (Server.Label_cache.find c "hot")
  done;
  check_int "hot hits do not churn the recency list" 1
    (Server.Label_cache.promotions c);
  (* Re-adding the head entry is the same fast path. *)
  Server.Label_cache.add c "hot" 3;
  check_int "head re-add does not churn either" 1 (Server.Label_cache.promotions c);
  check_bool "value still replaced" true (Server.Label_cache.find c "hot" = Some 3);
  (* LRU order stayed intact: "cold" is the eviction candidate. *)
  Server.Label_cache.add c "x" 4;
  Server.Label_cache.add c "y" 5;
  Server.Label_cache.add c "z" 6;
  check_bool "cold evicted first" true (Server.Label_cache.find c "cold" = None);
  check_bool "hot survives" true (Server.Label_cache.find c "hot" = Some 3)

(* Regression: stage timings come from a monotonic clock and [record] clamps
   at zero, so a negative sample (e.g. a stepped wall clock under the old
   gettimeofday source) cannot underflow the bucket index. *)
let test_metrics_negative_sample () =
  let m = Server.Metrics.create () in
  Server.Metrics.record m Server.Metrics.Decide (-1.0);
  Server.Metrics.record m Server.Metrics.Decide (-1e-9);
  Server.Metrics.record m Server.Metrics.Decide 0.0;
  let h = Server.Metrics.histogram m Server.Metrics.Decide in
  check_int "all three samples land" 3 h.Server.Metrics.count;
  check_int "clamped into the zero bucket" 3 h.Server.Metrics.buckets.(0);
  check_int "no negative totals" 0 h.Server.Metrics.total_ns

let test_ivar () =
  let iv = Server.Ivar.create () in
  check_bool "empty" true (Server.Ivar.peek iv = None);
  Server.Ivar.fill iv 42;
  check_bool "filled" true (Server.Ivar.read iv = 42);
  check_bool "second fill refused" false (Server.Ivar.try_fill iv 43);
  check_bool "prefilled" true (Server.Ivar.read (Server.Ivar.create_filled 7) = 7)

let () =
  Printf.printf "SERVER_DOMAINS=%d\n%!" domains;
  Alcotest.run "disclosure-server"
    [
      ( "equivalence",
        [
          Alcotest.test_case "server ≡ single-threaded service over 120 random histories"
            `Quick test_sequential_equivalence;
          Alcotest.test_case "uncached server ≡ service" `Quick
            test_sequential_equivalence_uncached;
          Alcotest.test_case "equivalence survives constant eviction" `Quick
            test_equivalence_under_eviction;
          Alcotest.test_case "cache hits across query variants" `Quick
            test_cache_hits_across_variants;
        ] );
      ( "overload",
        [
          Alcotest.test_case "full mailbox sheds fail-closed" `Quick
            test_overload_sheds_fail_closed;
          Alcotest.test_case "overload refusal tag" `Quick test_overload_refusal_tag;
        ] );
      ( "journal",
        [
          Alcotest.test_case "segmented journals recover bit-identically" `Quick
            test_segmented_recovery;
          Alcotest.test_case "torn final segment line tolerated" `Quick
            test_recovery_tolerates_torn_segment;
          Alcotest.test_case "explicit checkpoint on a running server" `Quick
            test_checkpointed_server_recovery;
          Alcotest.test_case "automatic per-shard checkpoint cadence" `Quick
            test_auto_checkpoint_equivalence;
          Alcotest.test_case "group commit: identical decisions, fewer fsyncs" `Quick
            test_group_commit_differential;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "unknown principal" `Quick test_unknown_principal;
          Alcotest.test_case "no registration after start" `Quick
            test_register_after_start_rejected;
          Alcotest.test_case "stop before start resolves tickets" `Quick
            test_stop_before_start_resolves_tickets;
          Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
        ] );
      ( "components",
        [
          Alcotest.test_case "bounded mailbox" `Quick test_mailbox;
          Alcotest.test_case "batched dequeue" `Quick test_mailbox_pop_batch;
          Alcotest.test_case "label cache LRU" `Quick test_label_cache_lru;
          Alcotest.test_case "hot key does not churn the LRU list" `Quick
            test_label_cache_hot_key_no_churn;
          Alcotest.test_case "negative latency sample cannot underflow" `Quick
            test_metrics_negative_sample;
          Alcotest.test_case "ivar" `Quick test_ivar;
        ] );
    ]
