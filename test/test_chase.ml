(* Tests for functional dependencies, the chase, and FD-aware rewriting. *)

module Fd = Cq.Fd
module Chase = Cq.Chase
module Query = Cq.Query
module Rewrite = Rewriting.Rewrite
module General = Disclosure.General
module Relation = Relational.Relation

let pq = Helpers.pq

(* P(uid, birthday, music) with key uid. *)
let p_schema =
  Relational.Schema.of_list [ { name = "P"; attrs = [ "uid"; "birthday"; "music" ] } ]

let key_p = Fd.key p_schema ~rel:"P" ~key_positions:[ 0 ]

let chase_ok fds q =
  match Chase.chase ~fds q with
  | Some c -> c
  | None -> Alcotest.fail "unexpected unsatisfiable chase"

let test_fd_make () =
  Helpers.check_bool "key fd shape" true (key_p.Fd.lhs = [ 0 ] && key_p.Fd.rhs = [ 1; 2 ]);
  Alcotest.check_raises "empty rhs" (Fd.Invalid "empty right-hand side") (fun () ->
      ignore (Fd.make ~rel:"P" ~lhs:[ 0 ] ~rhs:[]));
  Helpers.check_bool "negative positions rejected" true
    (try
       ignore (Fd.make ~rel:"P" ~lhs:[ -1 ] ~rhs:[ 1 ]);
       false
     with Fd.Invalid _ -> true)

let test_fd_holds () =
  let ok = Relation.of_rows 3 [ [ "u1"; "b1"; "m1" ]; [ "u2"; "b2"; "m2" ] ] in
  let bad = Relation.of_rows 3 [ [ "u1"; "b1"; "m1" ]; [ "u1"; "b2"; "m1" ] ] in
  Helpers.check_bool "satisfied" true (Fd.holds key_p ok);
  Helpers.check_bool "violated" false (Fd.holds key_p bad)

let test_chase_merges_atoms () =
  let q = pq "Q(b, m) :- P('me', b, x), P('me', y, m)" in
  let c = chase_ok [ key_p ] q in
  Helpers.check_int "atoms merged" 1 (List.length c.Query.body);
  Helpers.check_bool "equivalent to the single-atom form" true
    (Cq.Containment.equivalent c (pq "Q(b, m) :- P('me', b, m)"))

let test_chase_transitive () =
  (* Merging can cascade through shared keys. *)
  let q = pq "Q(m) :- P(u, b1, x), P(u, b2, m), P(u, b1, m2)" in
  let c = chase_ok [ key_p ] q in
  Helpers.check_int "all three merge" 1 (List.length c.Query.body)

let test_chase_unsatisfiable () =
  let q = pq "Q() :- P('me', 'a', x), P('me', 'b', y)" in
  Helpers.check_bool "conflicting constants" true (Chase.chase ~fds:[ key_p ] q = None)

let test_chase_no_fds_identity () =
  let q = pq "Q(b, m) :- P('me', b, x), P('me', y, m)" in
  let c = chase_ok [] q in
  Helpers.check_int "untouched" 2 (List.length c.Query.body)

let test_containment_under_fds () =
  let two_atoms = pq "Q(b, m) :- P('me', b, x), P('me', y, m)" in
  let one_atom = pq "Q(b, m) :- P('me', b, m)" in
  (* Plainly, the two-atom query is weaker; under the key they coincide. *)
  Helpers.check_bool "not equivalent without FD" false
    (Cq.Containment.equivalent two_atoms one_atom);
  Helpers.check_bool "equivalent under the key" true
    (Chase.equivalent ~fds:[ key_p ] two_atoms one_atom);
  (* Unsatisfiable queries are contained in everything. *)
  Helpers.check_bool "unsat contained" true
    (Chase.contained_in ~fds:[ key_p ]
       (pq "Q() :- P('me', 'a', x), P('me', 'b', y)")
       (pq "Q() :- Nowhere(z)"))

let test_containment_fd_semantics () =
  (* On an FD-compliant instance, queries equivalent under the FD have equal
     answers. *)
  let db =
    Relational.Database.create p_schema
    |> fun db ->
    Relational.Database.insert_rows db "P"
      [ [ "me"; "b0"; "m0" ]; [ "u1"; "b1"; "m1" ] ]
  in
  Helpers.check_bool "instance satisfies the key" true
    (Fd.holds key_p (Relational.Database.relation db "P"));
  let two_atoms = pq "Q(b, m) :- P('me', b, x), P('me', y, m)" in
  let one_atom = pq "Q(b, m) :- P('me', b, m)" in
  Alcotest.check Helpers.relation_testable "same answers"
    (Cq.Eval.eval db one_atom) (Cq.Eval.eval db two_atoms)

(* --- FD-aware rewriting ------------------------------------------------ *)

let own_birthday = pq "OwnBirthday(b) :- P('me', b, m)"
let own_music = pq "OwnMusic(m) :- P('me', b, m)"

let test_rewriting_joins_on_key () =
  let q = pq "Q(b, m) :- P('me', b, m)" in
  (* Without the key FD, two one-attribute views cannot rebuild the pair. *)
  Helpers.check_bool "not rewritable without FD" false
    (Rewrite.rewritable ~views:[ own_birthday; own_music ] q);
  (* With the key, the join on uid is lossless. *)
  (match Rewrite.find ~fds:[ key_p ] ~views:[ own_birthday; own_music ] q with
  | None -> Alcotest.fail "expected an FD-aware rewriting"
  | Some rw ->
    Helpers.check_int "two view atoms" 2 (List.length rw.Query.body));
  (* But a single view still does not suffice. *)
  Helpers.check_bool "one view insufficient" false
    (Rewrite.rewritable ~fds:[ key_p ] ~views:[ own_birthday ] q)

let test_general_with_fds () =
  let sys =
    General.create ~fds:[ key_p ]
      [ ("OwnBirthday", own_birthday); ("OwnMusic", own_music) ]
  in
  let q = pq "Q(b, m) :- P('me', b, m)" in
  Helpers.check_bool "cross-view projection answerable" true (General.answerable sys q);
  (* Neither view alone answers it: the ℓ⁺ analogue is empty even though the
     combination works — non-decomposability in action. *)
  Alcotest.check Alcotest.(list string) "plus empty" [] (General.plus sys q);
  (* Without FDs the same system refuses. *)
  let sys_nofd =
    General.create [ ("OwnBirthday", own_birthday); ("OwnMusic", own_music) ]
  in
  Helpers.check_bool "refused without FD" false (General.answerable sys_nofd q)

let test_fd_rewriting_semantics () =
  (* Execute the FD-aware rewriting over materialized views on a compliant
     instance and compare with direct evaluation. *)
  let db =
    Relational.Database.create p_schema
    |> fun db ->
    Relational.Database.insert_rows db "P"
      [ [ "me"; "b0"; "m0" ]; [ "u1"; "b1"; "m1" ]; [ "u2"; "b2"; "m2" ] ]
  in
  let q = pq "Q(b, m) :- P('me', b, m)" in
  match Rewrite.find ~fds:[ key_p ] ~views:[ own_birthday; own_music ] q with
  | None -> Alcotest.fail "expected a rewriting"
  | Some rw ->
    let schema' =
      Relational.Schema.of_list
        [
          { name = "P"; attrs = [ "uid"; "birthday"; "music" ] };
          { name = "OwnBirthday"; attrs = [ "b" ] };
          { name = "OwnMusic"; attrs = [ "m" ] };
        ]
    in
    let db' = Relational.Database.create schema' in
    let db' = Relational.Database.set_relation db' "P" (Relational.Database.relation db "P") in
    let db' =
      Relational.Database.set_relation db' "OwnBirthday" (Cq.Eval.eval db own_birthday)
    in
    let db' = Relational.Database.set_relation db' "OwnMusic" (Cq.Eval.eval db own_music) in
    Alcotest.check Helpers.relation_testable "rewriting faithful on compliant data"
      (Cq.Eval.eval db q) (Cq.Eval.eval db' rw)

let suite =
  [
    Alcotest.test_case "fd construction" `Quick test_fd_make;
    Alcotest.test_case "fd holds" `Quick test_fd_holds;
    Alcotest.test_case "chase merges atoms" `Quick test_chase_merges_atoms;
    Alcotest.test_case "chase cascades" `Quick test_chase_transitive;
    Alcotest.test_case "chase unsatisfiable" `Quick test_chase_unsatisfiable;
    Alcotest.test_case "chase without fds" `Quick test_chase_no_fds_identity;
    Alcotest.test_case "containment under fds" `Quick test_containment_under_fds;
    Alcotest.test_case "fd containment semantics" `Quick test_containment_fd_semantics;
    Alcotest.test_case "rewriting joins on key" `Quick test_rewriting_joins_on_key;
    Alcotest.test_case "General with fds" `Quick test_general_with_fds;
    Alcotest.test_case "fd rewriting semantics" `Quick test_fd_rewriting_semantics;
  ]
