(* Property tests for the canonical query forms behind the serving layer's
   label cache (lib/cq/minimize.ml, lib/server/canon.ml): canonical keys must
   be invariant under the syntactic variation they claim to absorb, and
   labeling must be invariant under canonicalization — the two facts that
   make a cache hit sound. *)

module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Minimize = Cq.Minimize
module Query = Cq.Query
module Gen = QCheck.Gen

let count = 200

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* A pipeline over the property schema (R/3, S/2) so random queries from
   [Generators.gen_query] hit real views. *)
let pipeline =
  Pipeline.create
    (List.map Helpers.sview
       [
         "VR(x, y, z) :- R(x, y, z)";
         "VR1(x) :- R(x, y, z)";
         "VR23(y, z) :- R(x, y, z)";
         "VS(x, y) :- S(x, y)";
         "VS2(y) :- S(x, y)";
       ])

(* --- random syntactic variants ---------------------------------------- *)

(* A variant of [q] that differs only by body-atom order and an injective
   variable renaming — exactly the variation [normal_form] must absorb. *)
let gen_variant (q : Query.t) : Query.t Gen.t =
  let open Gen in
  let vars = Query.vars q in
  let* shuffled_names = shuffle_l vars in
  let renaming = List.combine vars (List.map (Printf.sprintf "fresh_%s") shuffled_names) in
  let rename v = match List.assoc_opt v renaming with Some v' -> v' | None -> v in
  let* body = shuffle_l (Query.rename_vars rename q).body in
  return (Query.make ~name:"Renamed" ~head:(Query.rename_vars rename q).head ~body ())

let gen_query_with_variant =
  let open Gen in
  let* q = Generators.gen_query in
  let* v = gen_variant q in
  return (q, v)

let arbitrary_query_with_variant =
  QCheck.make
    ~print:(fun (q, v) ->
      Printf.sprintf "(%s, %s)" (Query.to_string q) (Query.to_string v))
    gen_query_with_variant

(* [q] with one body atom duplicated — a redundant atom [minimize] removes,
   which only the minimized key level must absorb. *)
let gen_with_redundant_atom (q : Query.t) : Query.t Gen.t =
  let open Gen in
  let* i = int_bound (List.length q.body - 1) in
  let dup = List.nth q.body i in
  let* body = shuffle_l (dup :: q.body) in
  return (Query.make ~name:q.name ~head:q.head ~body ())

let gen_query_with_redundant =
  let open Gen in
  let* q = Generators.gen_query in
  let* r = gen_with_redundant_atom q in
  let* v = gen_variant r in
  return (q, v)

let arbitrary_query_with_redundant =
  QCheck.make
    ~print:(fun (q, v) ->
      Printf.sprintf "(%s, %s)" (Query.to_string q) (Query.to_string v))
    gen_query_with_redundant

(* --- properties -------------------------------------------------------- *)

let normal_form_invariant =
  prop "normal_form invariant under reorder + rename" arbitrary_query_with_variant
    (fun (q, v) -> Query.equal (Minimize.normal_form q) (Minimize.normal_form v))

let normal_form_equivalent =
  prop "normal_form is equivalent to its input" Generators.arbitrary_query (fun q ->
      Cq.Containment.equivalent q (Minimize.normal_form q))

let normal_form_idempotent =
  prop "normal_form idempotent" Generators.arbitrary_query (fun q ->
      let n = Minimize.normal_form q in
      Query.equal n (Minimize.normal_form n))

let canonicalize_absorbs_redundancy =
  prop "canonicalize invariant under redundant atom + reorder + rename"
    arbitrary_query_with_redundant (fun (q, v) ->
      Query.equal (Minimize.canonicalize q) (Minimize.canonicalize v))

(* The cache-soundness fact itself: a query, its reordered/renamed variant,
   and its canonical form all label at the same lattice point, so a label
   cached under any canonical key decides exactly like a fresh one. *)
let labeling_invariant =
  prop "labeling invariant under canonicalization" arbitrary_query_with_redundant
    (fun (q, v) ->
      let l = Pipeline.label pipeline q in
      Label.equal l (Pipeline.label pipeline v)
      && Label.equal l (Pipeline.label pipeline (Minimize.canonicalize q))
      && Label.equal l (Pipeline.label pipeline (Minimize.normal_form q)))

(* Key-level restatement, as the serving layer consumes it. *)
let keys_invariant =
  prop "cache keys invariant at their level" arbitrary_query_with_variant (fun (q, v) ->
      String.equal (Server.Canon.normal_key q) (Server.Canon.normal_key v)
      && String.equal (Server.Canon.minimized_key q) (Server.Canon.minimized_key v))

let suite =
  [
    normal_form_invariant;
    normal_form_equivalent;
    normal_form_idempotent;
    canonicalize_absorbs_redundancy;
    labeling_invariant;
    keys_invariant;
  ]
