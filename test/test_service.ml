(* Tests for the multi-principal service layer and label serialization. *)

module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label

let pq = Helpers.pq

let v1 = Helpers.sview "V1(x, y) :- Meetings(x, y)"
let v2 = Helpers.sview "V2(x) :- Meetings(x, y)"
let v3 = Helpers.sview "V3(x, y, z) :- Contacts(x, y, z)"

let make_service () =
  let service = Service.create (Pipeline.create [ v1; v2; v3 ]) in
  Service.register_stateless service ~principal:"calendar-app" ~views:[ v2 ];
  Service.register service ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  service

let test_registration () =
  let service = make_service () in
  Alcotest.check
    Alcotest.(list string)
    "principals in order" [ "calendar-app"; "crm-app" ] (Service.principals service);
  Alcotest.check_raises "duplicate" (Service.Duplicate_principal "crm-app") (fun () ->
      Service.register_stateless service ~principal:"crm-app" ~views:[ v1 ])

let test_isolation () =
  (* Each principal has its own cumulative state. *)
  let service = make_service () in
  let contacts = pq "Q(x, y, z) :- Contacts(x, y, z)" in
  let meetings = pq "Q(x, y) :- Meetings(x, y)" in
  Helpers.check_bool "crm reads contacts" true
    (Service.submit service ~principal:"crm-app" contacts = Monitor.Answered);
  (* crm-app chose the contacts side of its wall. *)
  Helpers.check_bool "crm refused meetings" true
    (Service.submit service ~principal:"crm-app" meetings = Monitor.Refused);
  (* calendar-app is unaffected, but only sees V2-level data. *)
  Helpers.check_bool "calendar refused full meetings" true
    (Service.submit service ~principal:"calendar-app" meetings = Monitor.Refused);
  Helpers.check_bool "calendar reads slots" true
    (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)")
    = Monitor.Answered);
  Helpers.check_bool "stats" true (Service.stats service ~principal:"crm-app" = (1, 1))

let test_unknown_principal () =
  let service = make_service () in
  Alcotest.check_raises "unknown" (Service.Unknown_principal "nobody") (fun () ->
      ignore (Service.submit service ~principal:"nobody" (pq "Q(x) :- Meetings(x, y)")))

let test_reset () =
  let service = make_service () in
  ignore (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
  Helpers.check_int "narrowed" 1 (List.length (Service.alive service ~principal:"crm-app"));
  Service.reset service ~principal:"crm-app";
  Helpers.check_int "restored" 2 (List.length (Service.alive service ~principal:"crm-app"));
  Helpers.check_bool "counters cleared" true
    (Service.stats service ~principal:"crm-app" = (0, 0))

let test_submit_label () =
  let service = make_service () in
  let p = Service.pipeline service in
  let l = Pipeline.label p (pq "Q(x) :- Meetings(x, y)") in
  Helpers.check_bool "pre-labeled submission" true
    (Service.submit_label service ~principal:"calendar-app" l = Monitor.Answered)

let test_answer_mode () =
  let service = make_service () in
  let db = Helpers.fig1_db in
  (* Allowed: answer computed through the views matches direct evaluation. *)
  (match Service.answer service ~principal:"calendar-app" ~db (pq "Q(x) :- Meetings(x, y)") with
  | None -> Alcotest.fail "expected an answer"
  | Some rel ->
    Alcotest.check Helpers.relation_testable "via views"
      (Cq.Eval.eval db (pq "Q(x) :- Meetings(x, y)"))
      rel);
  (* Refused: None, and the refusal is counted. *)
  Helpers.check_bool "refused query yields None" true
    (Service.answer service ~principal:"calendar-app" ~db (pq "Q(x, y) :- Meetings(x, y)")
    = None);
  Helpers.check_bool "stats reflect both" true
    (Service.stats service ~principal:"calendar-app" = (1, 1))

let test_label_roundtrip () =
  let p = Pipeline.create [ v1; v2; v3 ] in
  let queries =
    [
      "Q(x) :- Meetings(x, 'Cathy')";
      "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')";
      "Q(x) :- Unknown(x)";
    ]
  in
  List.iter
    (fun s ->
      let l = Pipeline.label p (pq s) in
      match Label.decode (Label.encode l) with
      | Ok l' -> Helpers.check_bool ("roundtrip " ^ s) true (l = l')
      | Error e -> Alcotest.fail e)
    queries

let test_label_decode_errors () =
  Helpers.check_bool "garbage" true (Result.is_error (Label.decode "zz"));
  Helpers.check_bool "missing colon" true (Result.is_error (Label.decode "12"));
  Helpers.check_bool "negative" true (Result.is_error (Label.decode "-1:2"));
  Helpers.check_bool "mask overflow" true (Result.is_error (Label.decode "0:80000000"));
  Helpers.check_bool "empty ok" true (Label.decode "" = Ok [||])

let suite =
  [
    Alcotest.test_case "registration" `Quick test_registration;
    Alcotest.test_case "principal isolation" `Quick test_isolation;
    Alcotest.test_case "unknown principal" `Quick test_unknown_principal;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "pre-labeled submission" `Quick test_submit_label;
    Alcotest.test_case "trusted evaluator mode" `Quick test_answer_mode;
    Alcotest.test_case "label encode/decode roundtrip" `Quick test_label_roundtrip;
    Alcotest.test_case "label decode errors" `Quick test_label_decode_errors;
  ]
