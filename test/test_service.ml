(* Tests for the multi-principal service layer and label serialization. *)

module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Journal = Disclosure.Journal
module Guard = Disclosure.Guard
module Mclock = Disclosure.Mclock

let pq = Helpers.pq

let v1 = Helpers.sview "V1(x, y) :- Meetings(x, y)"
let v2 = Helpers.sview "V2(x) :- Meetings(x, y)"
let v3 = Helpers.sview "V3(x, y, z) :- Contacts(x, y, z)"

let make_service () =
  let service = Service.create (Pipeline.create [ v1; v2; v3 ]) in
  Service.register_stateless service ~principal:"calendar-app" ~views:[ v2 ];
  Service.register service ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  service

let test_registration () =
  let service = make_service () in
  Alcotest.check
    Alcotest.(list string)
    "principals in order" [ "calendar-app"; "crm-app" ] (Service.principals service);
  Alcotest.check_raises "duplicate" (Service.Duplicate_principal "crm-app") (fun () ->
      Service.register_stateless service ~principal:"crm-app" ~views:[ v1 ])

let test_isolation () =
  (* Each principal has its own cumulative state. *)
  let service = make_service () in
  let contacts = pq "Q(x, y, z) :- Contacts(x, y, z)" in
  let meetings = pq "Q(x, y) :- Meetings(x, y)" in
  Helpers.check_bool "crm reads contacts" true
    (Service.submit service ~principal:"crm-app" contacts = Monitor.Answered);
  (* crm-app chose the contacts side of its wall. *)
  Helpers.check_bool "crm refused meetings" true
    (Service.submit service ~principal:"crm-app" meetings |> Monitor.is_refused);
  (* calendar-app is unaffected, but only sees V2-level data. *)
  Helpers.check_bool "calendar refused full meetings" true
    (Service.submit service ~principal:"calendar-app" meetings |> Monitor.is_refused);
  Helpers.check_bool "calendar reads slots" true
    (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)")
    = Monitor.Answered);
  Helpers.check_bool "stats" true (Service.stats service ~principal:"crm-app" = (1, 1))

let test_unknown_principal () =
  let service = make_service () in
  Alcotest.check_raises "unknown" (Service.Unknown_principal "nobody") (fun () ->
      ignore (Service.submit service ~principal:"nobody" (pq "Q(x) :- Meetings(x, y)")))

let test_reset () =
  let service = make_service () in
  ignore (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
  Helpers.check_int "narrowed" 1 (List.length (Service.alive service ~principal:"crm-app"));
  Service.reset service ~principal:"crm-app";
  Helpers.check_int "restored" 2 (List.length (Service.alive service ~principal:"crm-app"));
  Helpers.check_bool "counters cleared" true
    (Service.stats service ~principal:"crm-app" = (0, 0))

let test_submit_label () =
  let service = make_service () in
  let p = Service.pipeline service in
  let l = Pipeline.label p (pq "Q(x) :- Meetings(x, y)") in
  Helpers.check_bool "pre-labeled submission" true
    (Service.submit_label service ~principal:"calendar-app" l = Monitor.Answered)

let test_answer_mode () =
  let service = make_service () in
  let db = Helpers.fig1_db in
  (* Allowed: answer computed through the views matches direct evaluation. *)
  (match Service.answer service ~principal:"calendar-app" ~db (pq "Q(x) :- Meetings(x, y)") with
  | None -> Alcotest.fail "expected an answer"
  | Some rel ->
    Alcotest.check Helpers.relation_testable "via views"
      (Cq.Eval.eval db (pq "Q(x) :- Meetings(x, y)"))
      rel);
  (* Refused: None, and the refusal is counted. *)
  Helpers.check_bool "refused query yields None" true
    (Service.answer service ~principal:"calendar-app" ~db (pq "Q(x, y) :- Meetings(x, y)")
    = None);
  Helpers.check_bool "stats reflect both" true
    (Service.stats service ~principal:"calendar-app" = (1, 1))

let test_label_roundtrip () =
  let p = Pipeline.create [ v1; v2; v3 ] in
  let queries =
    [
      "Q(x) :- Meetings(x, 'Cathy')";
      "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')";
      "Q(x) :- Unknown(x)";
    ]
  in
  List.iter
    (fun s ->
      let l = Pipeline.label p (pq s) in
      match Label.decode (Label.encode l) with
      | Ok l' -> Helpers.check_bool ("roundtrip " ^ s) true (l = l')
      | Error e -> Alcotest.fail e)
    queries

(* --- decision journal, snapshot, recovery ---------------------------- *)

(* Remove the whole segment family a journal base can grow: the active
   segment, rotated segments, and the checkpoint. *)
let cleanup_journal base =
  let rm f = try Sys.remove f with Sys_error _ -> () in
  rm base;
  rm (base ^ ".ckpt");
  rm (base ^ ".ckpt.tmp");
  for i = 1 to 64 do
    rm (Printf.sprintf "%s.%d" base i)
  done

let with_tmp_journal f =
  let path = Filename.temp_file "disclosure-journal" ".log" in
  Fun.protect ~finally:(fun () -> cleanup_journal path) (fun () -> f path)

let make_journaled_service ?(format = `V2) ?(segment_bytes = 0) path =
  let service =
    Service.create ~journal:path ~journal_format:format ~segment_bytes
      (Pipeline.create [ v1; v2; v3 ])
  in
  Service.register_stateless service ~principal:"calendar-app" ~views:[ v2 ];
  Service.register service ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  service

let test_journal_lines () =
  with_tmp_journal (fun path ->
      let service = make_journaled_service path in
      ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"));
      ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x, y) :- Meetings(x, y)"));
      Service.reset service ~principal:"calendar-app";
      Service.close service;
      (* Raw framing: one self-delimiting v2 record per line. *)
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Helpers.check_int "three lines" 3 (List.length lines);
      List.iter
        (fun l ->
          Helpers.check_bool "v2 magic" true
            (String.length l > 3 && String.sub l 0 3 = "J2 "))
        lines;
      (* Decoded: checksummed [principal; label; decision] triples in order. *)
      match Journal.read_file path with
      | Error c -> Alcotest.failf "journal does not decode: %s" c.Journal.corrupt_reason
      | Ok (records, torn) ->
        Helpers.check_bool "no torn tail" true (torn = None);
        let decisions = List.map (fun r -> List.nth r.Journal.fields 2) records in
        Alcotest.check
          Alcotest.(list string)
          "decision column" [ "answered"; "refused:policy"; "reset" ] decisions)

let test_recover_replays () =
  with_tmp_journal (fun path ->
      let service = make_journaled_service path in
      ignore (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
      ignore (Service.submit service ~principal:"crm-app" (pq "Q(x, y) :- Meetings(x, y)"));
      ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"));
      let live = Service.snapshot service in
      Service.close service;
      (* A fresh service over the same deployment, rebuilt from the log. *)
      with_tmp_journal (fun path2 ->
          let recovered = make_journaled_service path2 in
          (match Service.recover recovered ~journal:path with
          | Ok r ->
            Helpers.check_int "records applied" 3 r.Service.applied;
            Helpers.check_bool "no checkpoint involved" true
              (not r.Service.from_checkpoint);
            Helpers.check_bool "no torn tail" true (not r.Service.torn_tail)
          | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
          Helpers.check_bool "replayed state = live state" true
            (Service.snapshot recovered = live);
          Service.close recovered))

let test_recover_errors () =
  with_tmp_journal (fun path ->
      (* A legacy line for an unregistered principal: well-formed, but the
         current deployment cannot re-apply it. *)
      Out_channel.with_open_text path (fun oc ->
          output_string oc "nobody\t-\tanswered\n");
      let service = make_service () in
      (match Service.recover service ~journal:path with
      | Error e ->
        Helpers.check_bool "names the file" true (String.equal e.Service.file path);
        Helpers.check_bool "replay error" true (e.Service.kind = `Replay);
        Helpers.check_int "1-based line number" 1 e.Service.offset;
        let s = Service.recovery_error_to_string e in
        Helpers.check_bool "to_string leads with file:offset" true
          (String.length s > String.length path
          && String.sub s 0 (String.length path) = path)
      | Ok _ -> Alcotest.fail "unknown principal must fail replay");
      match Service.recover service ~journal:"/nonexistent/journal.log" with
      | Error e -> Helpers.check_bool "io error" true (e.Service.kind = `Io)
      | Ok _ -> Alcotest.fail "missing file must fail replay")

(* Replay-vs-live equivalence over random histories: whatever interleaving of
   principals, queries, and resets actually happened, replaying the journal
   into a fresh service reproduces every monitor bit-for-bit. *)
let test_recover_equivalence_random () =
  let queries =
    [|
      pq "Q(x) :- Meetings(x, y)";
      pq "Q(x, y) :- Meetings(x, y)";
      pq "Q(y) :- Meetings(x, y)";
      pq "Q(x, y, z) :- Contacts(x, y, z)";
      pq "Q(x) :- Contacts(x, y, z)";
      pq "Q(x) :- Meetings(x, y), Contacts(y, e, p)";
      pq "Q() :- Unknown(u)";
    |]
  in
  let principals = [| "calendar-app"; "crm-app" |] in
  let rng = Random.State.make [| 0x5EED |] in
  for _history = 1 to 100 do
    with_tmp_journal (fun path ->
        let service = make_journaled_service path in
        let steps = 1 + Random.State.int rng 12 in
        for _ = 1 to steps do
          let principal = principals.(Random.State.int rng (Array.length principals)) in
          if Random.State.int rng 10 = 0 then Service.reset service ~principal
          else
            let q = queries.(Random.State.int rng (Array.length queries)) in
            ignore (Service.submit service ~principal q)
        done;
        let live = Service.snapshot service in
        Service.close service;
        let fresh = make_service () in
        (match Service.recover fresh ~journal:path with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
        Helpers.check_bool "random history replays bit-identically" true
          (Service.snapshot fresh = live))
  done

(* Run [f] with a reporter counting warnings from the service's log source,
   restoring the previous reporter and level afterwards. *)
let with_warn_counter f =
  let count = ref 0 in
  let reporter =
    {
      Logs.report =
        (fun _src level ~over k _msgf ->
          if level = Logs.Warning then incr count;
          over ();
          k ());
    }
  in
  let old_reporter = Logs.reporter () in
  let old_level = Logs.level () in
  Logs.set_reporter reporter;
  Logs.set_level (Some Logs.Warning);
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter old_reporter;
      Logs.set_level old_level)
    (fun () -> f count)

(* Submissions after [close] still decide correctly but are no longer
   durable; the first one warns (once), and recovery reproduces only the
   pre-close prefix. *)
let test_close_then_submit_warns () =
  with_tmp_journal (fun path ->
      with_warn_counter (fun warns ->
          let service = make_journaled_service path in
          ignore
            (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"));
          Service.close service;
          Helpers.check_int "no warning before the first post-close submit" 0 !warns;
          Helpers.check_bool "post-close submission still decided" true
            (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)")
            = Monitor.Answered);
          Helpers.check_int "first post-close submission warns" 1 !warns;
          ignore
            (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
          Helpers.check_int "subsequent submissions stay silent" 1 !warns;
          Helpers.check_bool "post-close decisions still commit" true
            (Service.stats service ~principal:"calendar-app" = (2, 0));
          (* The journal holds only the pre-close prefix. *)
          let fresh = make_service () in
          (match Service.recover fresh ~journal:path with
          | Ok r ->
            Helpers.check_int "only the pre-close decision is durable" 1
              r.Service.applied
          | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
          Helpers.check_bool "recovered stats reflect the prefix" true
            (Service.stats fresh ~principal:"calendar-app" = (1, 0))))

(* A crash mid-append can only truncate the final line from the right; such
   damage is tolerated (replay stops at the last complete record). The same
   damage anywhere else, or damage truncation cannot explain, stays fatal.
   This exercises the {e legacy} heuristics, which survive for replaying
   pre-v2 journals; the v2 torn/corrupt classification is tortured
   exhaustively in test_crash.ml. *)
let test_recover_torn_final_line () =
  let append path s =
    let oc = open_out_gen [ Open_append ] 0o644 path in
    output_string oc s;
    close_out oc
  in
  let run_history path =
    let service = make_journaled_service ~format:`Legacy path in
    ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"));
    ignore (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
    let live = Service.snapshot service in
    Service.close service;
    live
  in
  (* Torn variants a partial write could leave: a cut inside the principal,
     inside the label, inside "answered", inside a refusal tag. *)
  List.iter
    (fun torn ->
      with_tmp_journal (fun path ->
          with_warn_counter (fun warns ->
              let live = run_history path in
              append path torn;
              let fresh = make_service () in
              (match Service.recover fresh ~journal:path with
              | Ok r ->
                Helpers.check_int ("applied up to torn " ^ String.escaped torn) 2
                  r.Service.applied;
                Helpers.check_bool "torn tail reported" true r.Service.torn_tail
              | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
              Helpers.check_bool "state stops at the last complete record" true
                (Service.snapshot fresh = live);
              Helpers.check_int "torn line warns" 1 !warns)))
    [ "calendar-ap"; "crm-app\t0:"; "calendar-app\t-\tansw"; "crm-app\t-\trefused:pol" ];
  (* The same torn record followed by a complete line is corruption, not a
     crash artifact. *)
  with_tmp_journal (fun path ->
      ignore (run_history path);
      append path "calendar-app\t-\tansw\ncalendar-app\t-\treset\n";
      let fresh = make_service () in
      match Service.recover fresh ~journal:path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "torn line before EOF must fail replay");
  (* Damage truncation cannot produce — extra fields — is fatal even at the
     end of the file. *)
  with_tmp_journal (fun path ->
      ignore (run_history path);
      append path "calendar-app\t-\tanswered\textra";
      let fresh = make_service () in
      match Service.recover fresh ~journal:path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "four-field line must fail replay")

(* Regression: a tolerated torn final line is truncated away at recovery, so
   a service that keeps appending to the same journal afterwards starts its
   first new record on a clean boundary instead of merging it with the
   partial bytes (the legacy-format counterpart of test_crash.ml's
   crash/restart/crash sequence). *)
let test_legacy_append_after_torn_recovery () =
  with_tmp_journal (fun path ->
      let service = make_journaled_service ~format:`Legacy path in
      ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"));
      Service.close service;
      (let oc = open_out_gen [ Open_append ] 0o644 path in
       output_string oc "crm-app\t-\tansw";
       close_out oc);
      (* Restart in production order: open the journal for appending first,
         then recover over it. *)
      let restarted = make_journaled_service ~format:`Legacy path in
      (match Service.recover restarted ~journal:path with
      | Ok r -> Helpers.check_bool "torn tail reported" true r.Service.torn_tail
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      ignore (Service.submit restarted ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
      let live = Service.snapshot restarted in
      Service.close restarted;
      let fresh = make_service () in
      (match Service.recover fresh ~journal:path with
      | Ok r ->
        Helpers.check_int "torn line gone, both commits replay" 2 r.Service.applied;
        Helpers.check_bool "clean tail after truncation" true (not r.Service.torn_tail)
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      Helpers.check_bool "recovered = live" true (Service.snapshot fresh = live))

(* Regression: a legacy journal whose first principal begins with the v2
   magic bytes ("J2 " — legal, legacy only refuses separators) must still be
   routed to the legacy parser: format detection reads the whole v2 header
   shape, not just the magic. *)
let test_legacy_principal_with_v2_magic () =
  with_tmp_journal (fun path ->
      let principal = "J2 app" in
      let make ?journal () =
        let s = Service.create ?journal ~journal_format:`Legacy (Pipeline.create [ v1; v2; v3 ]) in
        Service.register_stateless s ~principal ~views:[ v2 ];
        s
      in
      let service = make ~journal:path () in
      ignore (Service.submit service ~principal (pq "Q(x) :- Meetings(x, y)"));
      let live = Service.snapshot service in
      Service.close service;
      let fresh = make () in
      (match Service.recover fresh ~journal:path with
      | Ok r -> Helpers.check_int "legacy record replays" 1 r.Service.applied
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      Helpers.check_bool "recovered = live" true (Service.snapshot fresh = live))

(* --- v2 escaping, checkpoints, rotation ------------------------------- *)

(* A principal name carrying every separator the record format uses. *)
let hostile = "evil\tapp\ninjected\t-\tanswered\r"

let make_hostile_service ?journal ?journal_format () =
  let service =
    Service.create ?journal ?journal_format (Pipeline.create [ v1; v2; v3 ])
  in
  Service.register_stateless service ~principal:hostile ~views:[ v2 ];
  Service.register service ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  service

(* Regression: a principal name containing tabs and newlines must not forge
   record boundaries. The v2 format escapes it and round-trips through
   recovery; the legacy format cannot escape, so submission refuses before
   anything reaches the file or the monitor. *)
let test_journal_field_injection_v2 () =
  with_tmp_journal (fun path ->
      let service = make_hostile_service ~journal:path () in
      Helpers.check_bool "hostile principal answered" true
        (Service.submit service ~principal:hostile (pq "Q(x) :- Meetings(x, y)")
        = Monitor.Answered);
      ignore (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
      let live = Service.snapshot service in
      Service.close service;
      (match Journal.read_file path with
      | Ok (records, None) ->
        Helpers.check_int "exactly two records — no forged boundaries" 2
          (List.length records);
        Helpers.check_bool "hostile name round-trips" true
          (List.hd (List.hd records).Journal.fields = hostile)
      | Ok (_, Some _) -> Alcotest.fail "no torn tail expected"
      | Error c -> Alcotest.failf "journal does not decode: %s" c.Journal.corrupt_reason);
      let fresh = make_hostile_service () in
      (match Service.recover fresh ~journal:path with
      | Ok r -> Helpers.check_int "both records replay" 2 r.Service.applied
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      Helpers.check_bool "recovered = live" true (Service.snapshot fresh = live))

let test_journal_field_injection_legacy_refused () =
  with_tmp_journal (fun path ->
      let service = make_hostile_service ~journal:path ~journal_format:`Legacy () in
      (match Service.submit service ~principal:hostile (pq "Q(x) :- Meetings(x, y)") with
      | Monitor.Refused (Guard.Malformed _) -> ()
      | d ->
        Alcotest.failf "legacy journal must refuse unescapable fields, got %a"
          Monitor.pp_decision d);
      Helpers.check_bool "nothing committed to the monitor" true
        (Service.stats service ~principal:hostile = (0, 0));
      Service.close service;
      Helpers.check_bool "nothing reached the file" true
        (In_channel.with_open_bin path In_channel.input_all = ""))

let test_checkpoint_and_compaction () =
  with_tmp_journal (fun path ->
      let service = make_journaled_service path in
      ignore (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
      ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"));
      (match Service.checkpoint service with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Helpers.check_bool "checkpoint file exists" true (Sys.file_exists (path ^ ".ckpt"));
      Helpers.check_int "one checkpoint written" 1 (Service.checkpoint_count service);
      Helpers.check_int "active segment sealed by one rotation" 1
        (Service.rotation_count service);
      Helpers.check_bool "covered segment compacted away" true
        (not (Sys.file_exists (path ^ ".1")));
      (* The tail: decisions after the checkpoint. *)
      ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x, y) :- Meetings(x, y)"));
      Service.reset service ~principal:"crm-app";
      let live = Service.snapshot service in
      Service.close service;
      let fresh = make_service () in
      (match Service.recover fresh ~journal:path with
      | Ok r ->
        Helpers.check_int "only the tail replays" 2 r.Service.applied;
        Helpers.check_bool "restored from the checkpoint" true r.Service.from_checkpoint
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      Helpers.check_bool "checkpoint + tail = live" true (Service.snapshot fresh = live))

(* The checkpoint is written atomically, so it has no torn-tail excuse: any
   damage is a typed fail-closed refusal naming the file. *)
let test_corrupt_checkpoint_fails_closed () =
  with_tmp_journal (fun path ->
      let service = make_journaled_service path in
      ignore (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"));
      (match Service.checkpoint service with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Service.close service;
      let ckpt = path ^ ".ckpt" in
      let s = In_channel.with_open_bin ckpt In_channel.input_all in
      let b = Bytes.of_string s in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      Out_channel.with_open_bin ckpt (fun oc -> Out_channel.output_bytes oc b);
      let fresh = make_service () in
      match Service.recover fresh ~journal:path with
      | Error e ->
        Helpers.check_bool "typed checkpoint corruption" true
          (e.Service.kind = `Corrupt_checkpoint);
        Helpers.check_bool "names the checkpoint file" true
          (String.equal e.Service.file ckpt)
      | Ok _ -> Alcotest.fail "damaged checkpoint must fail closed")

let test_segment_rotation_and_missing_segment () =
  with_tmp_journal (fun path ->
      (* A threshold smaller than one record: every append seals a segment. *)
      let service = make_journaled_service ~segment_bytes:16 path in
      for _ = 1 to 3 do
        ignore
          (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)"))
      done;
      ignore (Service.submit service ~principal:"crm-app" (pq "Q(x,y,z) :- Contacts(x,y,z)"));
      let live = Service.snapshot service in
      Service.close service;
      Helpers.check_bool "rotation happened" true (Service.rotation_count service >= 2);
      Helpers.check_bool "first rotated segment exists" true
        (Sys.file_exists (path ^ ".1"));
      let fresh = make_service () in
      (match Service.recover fresh ~journal:path with
      | Ok r -> Helpers.check_int "all segments replay" 4 r.Service.applied
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      Helpers.check_bool "multi-segment recovery = live" true
        (Service.snapshot fresh = live);
      (* A missing middle segment is a hole in the history: fail closed, do
         not silently skip it. *)
      Sys.remove (path ^ ".1");
      let fresh2 = make_service () in
      match Service.recover fresh2 ~journal:path with
      | Error e ->
        Helpers.check_bool "missing segment is an io error" true (e.Service.kind = `Io)
      | Ok _ -> Alcotest.fail "a gap in the segment sequence must fail recovery")

(* Property (qcheck): live ≡ full-replay ≡ checkpoint-plus-tail-replay over
   random histories, at every checkpoint cadence — including "after every
   decision" (cadence 1) and "never" (cadence 0 = pure replay). *)
let random_queries =
  [|
    pq "Q(x) :- Meetings(x, y)";
    pq "Q(x, y) :- Meetings(x, y)";
    pq "Q(y) :- Meetings(x, y)";
    pq "Q(x, y, z) :- Contacts(x, y, z)";
    pq "Q(x) :- Contacts(x, y, z)";
    pq "Q(x) :- Meetings(x, y), Contacts(y, e, p)";
    pq "Q() :- Unknown(u)";
  |]

let prop_recovery_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"live ≡ replay ≡ checkpoint+tail, at every cadence"
       QCheck.(list_of_size Gen.(1 -- 12) (pair (int_bound 1) (int_bound 7)))
       (fun history ->
         List.for_all
           (fun cadence ->
             with_tmp_journal (fun path ->
                 let service = make_journaled_service path in
                 let n = ref 0 in
                 List.iter
                   (fun (pi, ai) ->
                     let principal = [| "calendar-app"; "crm-app" |].(pi) in
                     (if ai >= Array.length random_queries then
                        Service.reset service ~principal
                      else ignore (Service.submit service ~principal random_queries.(ai)));
                     incr n;
                     if cadence > 0 && !n mod cadence = 0 then
                       match Service.checkpoint service with
                       | Ok () -> ()
                       | Error e -> failwith e)
                   history;
                 let live = Service.snapshot service in
                 Service.close service;
                 let fresh = make_service () in
                 (match Service.recover fresh ~journal:path with
                 | Ok _ -> ()
                 | Error e -> failwith (Service.recovery_error_to_string e));
                 Service.snapshot fresh = live))
           [ 0; 1; 3 ]))

(* Property (qcheck): live ≡ replay ≡ checkpoint+tail ≡ evict+reload. The
   same random history through a budget-1 tiered store — every submit a
   fault-in, the other principal's state evicted each time — must match an
   always-resident twin decision-for-decision, byte-for-byte on the journal
   tail and checkpoint, and replay back to the same state. Both twins
   register through partitions: the tier rebuilds evicted monitors from the
   registration-time partition spec. *)
let prop_evict_reload_equivalence =
  let partitions =
    [|
      [ ("slots", [ v2 ]) ]; [ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
    |]
  in
  let read_file f = In_channel.with_open_bin f In_channel.input_all in
  let run ~tiered cadence path history =
    let service = Service.create ~journal:path (Pipeline.create [ v1; v2; v3 ]) in
    let store =
      if tiered then
        Some
          (Store.create ~budget:(Store.Principals 1) ~spill:(path ^ ".spill")
             service)
      else None
    in
    let reg service store i principal =
      match store with
      | Some s -> Store.register s ~principal ~partitions:partitions.(i)
      | None -> Service.register service ~principal ~partitions:partitions.(i)
    in
    reg service store 0 "calendar-app";
    reg service store 1 "crm-app";
    let n = ref 0 in
    let decisions =
      List.map
        (fun (pi, ai) ->
          let principal = [| "calendar-app"; "crm-app" |].(pi) in
          let d =
            if ai >= Array.length random_queries then (
              Service.reset service ~principal;
              None)
            else Some (Service.submit service ~principal random_queries.(ai))
          in
          Option.iter Store.enforce store;
          incr n;
          (if cadence > 0 && !n mod cadence = 0 then
             match Service.checkpoint service with
             | Ok () -> Option.iter (Store.compact ~force:true) store
             | Error e -> failwith e);
          d)
        history
    in
    let live = Service.snapshot service in
    Service.close service;
    Option.iter Store.close store;
    let tail = read_file path in
    let ckpt =
      if Sys.file_exists (path ^ ".ckpt") then read_file (path ^ ".ckpt") else ""
    in
    (* Replay through a fresh twin of the same shape (tiered recovers
       through the tier: its spill file is reset, then repopulated by the
       replay's own evictions). *)
    let fresh = Service.create (Pipeline.create [ v1; v2; v3 ]) in
    let fstore =
      if tiered then
        Some
          (Store.create ~budget:(Store.Principals 1) ~spill:(path ^ ".re.spill")
             fresh)
      else None
    in
    reg fresh fstore 0 "calendar-app";
    reg fresh fstore 1 "crm-app";
    (match Service.recover fresh ~journal:path with
    | Ok _ -> ()
    | Error e -> failwith (Service.recovery_error_to_string e));
    let recovered = Service.snapshot fresh in
    Option.iter Store.close fstore;
    List.iter
      (fun f -> try Sys.remove f with Sys_error _ -> ())
      [ path ^ ".spill"; path ^ ".re.spill" ];
    (decisions, live, tail, ckpt, recovered)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"tiered (evict+reload) ≡ always-resident, at every cadence"
       QCheck.(list_of_size Gen.(1 -- 12) (pair (int_bound 1) (int_bound 7)))
       (fun history ->
         List.for_all
           (fun cadence ->
             with_tmp_journal (fun path_a ->
                 with_tmp_journal (fun path_b ->
                     let da, la, ta, ca, ra = run ~tiered:false cadence path_a history in
                     let db, lb, tb, cb, rb = run ~tiered:true cadence path_b history in
                     da = db && la = lb && ta = tb && ca = cb && ra = rb && rb = lb)))
           [ 0; 1; 3 ]))

(* The time source behind stage observations must be monotonic: never
   decreasing, and elapsed_s can never go negative even against a
   later-than-now origin. *)
let test_mclock_monotonic () =
  let t0 = Mclock.now_ns () in
  let t1 = Mclock.now_ns () in
  Helpers.check_bool "non-decreasing" true (Int64.compare t1 t0 >= 0);
  Helpers.check_bool "elapsed is clamped at zero" true
    (Mclock.elapsed_s ~since:(Int64.add (Mclock.now_ns ()) 1_000_000_000L) >= 0.);
  Helpers.check_bool "elapsed of a past origin is positive or zero" true
    (Mclock.elapsed_s ~since:t0 >= 0.)

let test_label_decode_errors () =
  Helpers.check_bool "garbage" true (Result.is_error (Label.decode "zz"));
  Helpers.check_bool "missing colon" true (Result.is_error (Label.decode "12"));
  Helpers.check_bool "negative" true (Result.is_error (Label.decode "-1:2"));
  Helpers.check_bool "mask overflow" true (Result.is_error (Label.decode "0:80000000"));
  Helpers.check_bool "empty ok" true (Label.decode "" = Ok [||])

let suite =
  [
    Alcotest.test_case "registration" `Quick test_registration;
    Alcotest.test_case "principal isolation" `Quick test_isolation;
    Alcotest.test_case "unknown principal" `Quick test_unknown_principal;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "pre-labeled submission" `Quick test_submit_label;
    Alcotest.test_case "trusted evaluator mode" `Quick test_answer_mode;
    Alcotest.test_case "label encode/decode roundtrip" `Quick test_label_roundtrip;
    Alcotest.test_case "label decode errors" `Quick test_label_decode_errors;
    Alcotest.test_case "journal line format" `Quick test_journal_lines;
    Alcotest.test_case "recover replays the journal" `Quick test_recover_replays;
    Alcotest.test_case "recover error paths" `Quick test_recover_errors;
    Alcotest.test_case "recover ≡ live over 100 random histories" `Quick
      test_recover_equivalence_random;
    Alcotest.test_case "close-then-submit warns and loses durability" `Quick
      test_close_then_submit_warns;
    Alcotest.test_case "legacy append after a torn-tail recovery" `Quick
      test_legacy_append_after_torn_recovery;
    Alcotest.test_case "legacy principal starting with the v2 magic" `Quick
      test_legacy_principal_with_v2_magic;
    Alcotest.test_case "recover tolerates a torn final line only" `Quick
      test_recover_torn_final_line;
    Alcotest.test_case "v2 escapes hostile journal fields" `Quick
      test_journal_field_injection_v2;
    Alcotest.test_case "legacy refuses unescapable journal fields" `Quick
      test_journal_field_injection_legacy_refused;
    Alcotest.test_case "checkpoint, compaction, tail replay" `Quick
      test_checkpoint_and_compaction;
    Alcotest.test_case "corrupt checkpoint fails closed" `Quick
      test_corrupt_checkpoint_fails_closed;
    Alcotest.test_case "segment rotation and missing-segment detection" `Quick
      test_segment_rotation_and_missing_segment;
    prop_recovery_equivalence;
    prop_evict_reload_equivalence;
    Alcotest.test_case "monotonic clock" `Quick test_mclock_monotonic;
  ]
