(* Shared helpers for the test suite. *)

module Value = Relational.Value
module Tagged = Disclosure.Tagged

let pq s = Cq.Parser.query_exn s

let tatom s =
  match Tagged.atom_of_query (pq s) with
  | Ok a -> a
  | Error e -> failwith e

let sview s = Disclosure.Sview.of_string s

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let query_testable = Alcotest.testable Cq.Query.pp Cq.Query.equal

let query_equiv_testable =
  Alcotest.testable Cq.Query.pp Cq.Containment.equivalent

let tagged_atom_testable = Alcotest.testable Tagged.pp_atom Tagged.atom_equal

let tagged_iso_testable = Alcotest.testable Tagged.pp_atom Tagged.iso_equivalent

let value_testable = Alcotest.testable Value.pp Value.equal

let relation_testable =
  Alcotest.testable Relational.Relation.pp Relational.Relation.equal

let tuple_testable = Alcotest.testable Relational.Tuple.pp Relational.Tuple.equal

(* The Figure 1 dataset. *)
let fig1_schema =
  Relational.Schema.of_list
    [
      { name = "Meetings"; attrs = [ "time"; "person" ] };
      { name = "Contacts"; attrs = [ "person"; "email"; "position" ] };
    ]

let fig1_db =
  let db = Relational.Database.create fig1_schema in
  let db =
    Relational.Database.insert_rows db "Meetings"
      [ [ "9"; "Jim" ]; [ "10"; "Cathy" ]; [ "12"; "Bob" ] ]
  in
  Relational.Database.insert_rows db "Contacts"
    [
      [ "Jim"; "jim@e.com"; "Manager" ];
      [ "Cathy"; "cathy@e.com"; "Intern" ];
      [ "Bob"; "bob@e.com"; "Consultant" ];
    ]

(* The Figure 3 universe over Meetings. *)
let v1 = tatom "V1(x, y) :- Meetings(x, y)"
let v2 = tatom "V2(x) :- Meetings(x, y)"
let v4 = tatom "V4(y) :- Meetings(x, y)"
let v5 = tatom "V5() :- Meetings(x, y)"

let fig3_universe = [ v1; v2; v4; v5 ]

(* Figure 4: all relational projections of the ternary Contacts relation. *)
let v3 = tatom "V3(x, y, z) :- Contacts(x, y, z)"
let v6 = tatom "V6(x, y) :- Contacts(x, y, z)"
let v7 = tatom "V7(x, z) :- Contacts(x, y, z)"
let v8 = tatom "V8(y, z) :- Contacts(x, y, z)"
let v9 = tatom "V9(x) :- Contacts(x, y, z)"
let v10 = tatom "V10(y) :- Contacts(x, y, z)"
let v11 = tatom "V11(z) :- Contacts(x, y, z)"
let v12 = tatom "V12() :- Contacts(x, y, z)"

let fig4_universe = [ v3; v6; v7; v8; v9; v10; v11; v12 ]
