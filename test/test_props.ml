(* Property-based tests (qcheck): the laws the disclosure machinery must
   satisfy on randomly generated atoms, queries, and databases. *)

module Tagged = Disclosure.Tagged
module RS = Disclosure.Rewrite_single
module Glb = Disclosure.Glb
module Order = Disclosure.Order
module Sview = Disclosure.Sview
module Dissect = Disclosure.Dissect
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Relation = Relational.Relation

let count = 200

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let prop_n n name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:n ~name arb f)

(* --- The ⪯ decision procedure ------------------------------------------- *)

let leq_reflexive =
  prop "⪯ reflexive" Generators.arbitrary_tagged_atom (fun a -> RS.leq_atom a a)

let leq_transitive =
  prop "⪯ transitive" Generators.arbitrary_atom_triple (fun (a, b, c) ->
      QCheck.assume (RS.leq_atom a b && RS.leq_atom b c);
      RS.leq_atom a c)

let leq_iso_invariant =
  prop "⪯ invariant under canonicalization" Generators.arbitrary_atom_pair (fun (a, b) ->
      RS.leq_atom a b = RS.leq_atom (Tagged.canonicalize a) (Tagged.canonicalize b))

let leq_matches_brute_force =
  prop_n 250 "⪯ agrees with brute-force rewriting search" Generators.arbitrary_atom_pair
    (fun (query, view) ->
      Bool.equal (RS.leq_atom query view) (Brute_force.rewritable ~query ~view))

let mutual_leq_is_iso =
  prop "mutual ⪯ coincides with iso-equivalence" Generators.arbitrary_atom_pair
    (fun (a, b) ->
      Bool.equal
        (RS.leq_atom a b && RS.leq_atom b a)
        (Tagged.iso_equivalent a b))

(* Semantic soundness: a witness rewriting computes the query's answer from
   the materialized view on every database. *)
let witness_semantics =
  prop_n 300 "witness rewritings are semantically faithful" Generators.arbitrary_atom_pair_db
    (fun ((query, view), db) ->
      match RS.check ~query ~view with
      | None -> QCheck.assume_fail ()
      | Some rw ->
        let sv = Sview.make ~name:"W" view in
        let via_view = RS.execute ~view_answer:(Sview.eval db sv) rw in
        let direct = Cq.Eval.eval db (Tagged.atom_to_query query) in
        Relation.equal via_view direct)

let expansion_iso =
  prop "expansions are iso-equivalent to the query" Generators.arbitrary_atom_pair
    (fun (query, view) ->
      match RS.check ~query ~view with
      | None -> QCheck.assume_fail ()
      | Some rw -> Tagged.iso_equivalent (RS.expand ~view rw) query)

(* --- GLB ------------------------------------------------------------------ *)

let glb_lower_bound =
  prop "GLB is a lower bound" Generators.arbitrary_atom_pair (fun (a, b) ->
      match Glb.singleton a b with
      | None -> true
      | Some g -> RS.leq_atom g a && RS.leq_atom g b)

let glb_commutative =
  prop "GLB commutative up to iso" Generators.arbitrary_atom_pair (fun (a, b) ->
      match Glb.singleton a b, Glb.singleton b a with
      | None, None -> true
      | Some g1, Some g2 -> Tagged.iso_equivalent g1 g2
      | _ -> false)

let glb_idempotent =
  prop "GLB idempotent" Generators.arbitrary_tagged_atom (fun a ->
      match Glb.singleton a a with
      | Some g -> Tagged.iso_equivalent g a
      | None -> false)

let glb_greatest =
  prop "GLB is greatest among sampled lower bounds" Generators.arbitrary_atom_triple
    (fun (a, b, x) ->
      QCheck.assume (RS.leq_atom x a && RS.leq_atom x b);
      match Glb.singleton a b with
      | None -> false (* x is a common lower bound, so ⊥ cannot be the GLB *)
      | Some g -> RS.leq_atom x g)

let glb_sets_associative =
  prop_n 100 "set GLB associative up to ≡" Generators.arbitrary_atom_triple
    (fun (a, b, c) ->
      let l = Glb.of_sets (Glb.of_sets [ a ] [ b ]) [ c ] in
      let r = Glb.of_sets [ a ] (Glb.of_sets [ b ] [ c ]) in
      (l = [] && r = []) || RS.equiv l r)

let glb_semantic_lower =
  (* Whatever the GLB reveals is computable from either operand: check that a
     witness rewriting exists and is faithful on random data. *)
  prop_n 200 "GLB semantically below operands" Generators.arbitrary_atom_pair_db
    (fun ((a, b), db) ->
      match Glb.singleton a b with
      | None -> QCheck.assume_fail ()
      | Some g -> (
        match RS.check ~query:g ~view:a with
        | None -> false
        | Some rw ->
          let sv = Sview.make ~name:"A" a in
          Relation.equal
            (RS.execute ~view_answer:(Sview.eval db sv) rw)
            (Cq.Eval.eval db (Tagged.atom_to_query g))))

(* --- Minimization and dissection ------------------------------------------ *)

let minimize_equivalent =
  prop "minimize preserves equivalence" Generators.arbitrary_query (fun q ->
      Cq.Containment.equivalent q (Cq.Minimize.minimize q))

let minimize_idempotent =
  prop "minimize idempotent" Generators.arbitrary_query (fun q ->
      let m = Cq.Minimize.minimize q in
      Cq.Query.equal m (Cq.Minimize.minimize m))

let minimize_minimal =
  prop "minimize yields minimal queries" Generators.arbitrary_query (fun q ->
      Cq.Minimize.is_minimal (Cq.Minimize.minimize q))

(* Independent minimality check that bypasses Minimize's pruning heuristics:
   no atom of the minimized query can be dropped, judged by a direct
   homomorphism search. Guards against false negatives in the absorbable
   fast path. *)
let minimize_minimal_bruteforce =
  prop "minimize minimal (unpruned check)" Generators.arbitrary_query (fun q ->
      let m = Cq.Minimize.minimize q in
      let body = m.Cq.Query.body in
      let removable i =
        let body' = List.filteri (fun j _ -> j <> i) body in
        match Cq.Query.make ~name:m.Cq.Query.name ~head:m.Cq.Query.head ~body:body' () with
        | q' -> Cq.Homomorphism.exists ~from:m ~into:q' ()
        | exception Cq.Query.Unsafe _ -> false
      in
      body = [ List.hd body ]
      || not (List.exists removable (List.init (List.length body) Fun.id)))

let minimize_semantics =
  prop_n 300 "minimize preserves answers" Generators.arbitrary_query_db (fun (q, db) ->
      Relation.equal (Cq.Eval.eval db q) (Cq.Eval.eval db (Cq.Minimize.minimize q)))

let containment_semantics =
  prop_n 300 "decided containment holds semantically" Generators.arbitrary_query_db
    (fun (q, db) ->
      let q2 = Cq.Minimize.minimize q in
      (* q ≡ q2, so answers must coincide — a degenerate but guaranteed case —
         plus: strip the last atom to get a weaker query when possible. *)
      let weaker =
        match q.Cq.Query.body with
        | _ :: (_ :: _ as rest) -> (
          match Cq.Query.make ~name:"W" ~head:q.Cq.Query.head ~body:rest () with
          | w -> Some w
          | exception Cq.Query.Unsafe _ -> None)
        | _ -> None
      in
      let sub_ok =
        match weaker with
        | None -> true
        | Some w ->
          (not (Cq.Containment.contained_in q w))
          ||
          let rq = Cq.Eval.eval db q and rw = Cq.Eval.eval db w in
          Relation.equal (Relation.inter rq rw) rq
      in
      sub_ok && Relation.equal (Cq.Eval.eval db q) (Cq.Eval.eval db q2))

let dissect_well_formed =
  prop "dissect produces well-formed single atoms" Generators.arbitrary_query (fun q ->
      let atoms = Dissect.dissect q in
      atoms <> []
      && List.for_all Tagged.well_formed atoms
      && List.length atoms <= List.length q.Cq.Query.body)

let dissect_renaming_invariant =
  (* Dissection is stable under variable renaming: the output iso classes
     coincide. (Names themselves may differ — dedup works up to iso.) *)
  prop "dissect invariant under renaming" Generators.arbitrary_query (fun q ->
      let q' = Cq.Query.freshen ~suffix:"_r" q in
      let a = Dissect.dissect q and b = Dissect.dissect q' in
      List.length a = List.length b
      && List.for_all (fun x -> List.exists (Tagged.iso_equivalent x) b) a)

let dissect_label_above_atom_labels =
  (* Each dissected atom of a single-atom query is the query itself. *)
  prop "single atoms dissect to themselves" Generators.arbitrary_tagged_atom (fun a ->
      QCheck.assume (Tagged.distinguished_vars a <> [] || Tagged.existential_vars a <> []);
      match Dissect.dissect (Tagged.atom_to_query a) with
      | [ b ] -> Tagged.iso_equivalent a b
      | _ -> false)

(* --- The chase -------------------------------------------------------------- *)

let fds = Generators.props_fds

let chase_idempotent =
  prop "chase idempotent (up to FD-equivalence)" Generators.arbitrary_query (fun q ->
      match Cq.Chase.chase ~fds q with
      | None -> true
      | Some c -> (
        match Cq.Chase.chase ~fds c with
        | None -> false (* a successful chase cannot turn unsatisfiable *)
        | Some c' -> Cq.Containment.equivalent c c'))

let chase_preserves_answers =
  prop_n 300 "chase preserves answers on compliant databases"
    Generators.arbitrary_query_compliant_db (fun (q, db) ->
      match Cq.Chase.chase ~fds q with
      | None -> Relation.is_empty (Cq.Eval.eval db q)
      | Some c -> Relation.equal (Cq.Eval.eval db q) (Cq.Eval.eval db c))

let chase_containment_sound =
  prop_n 300 "FD-containment holds semantically on compliant databases"
    Generators.arbitrary_query_pair_compliant_db (fun ((q1, q2), db) ->
      QCheck.assume (Cq.Query.head_arity q1 = Cq.Query.head_arity q2);
      QCheck.assume (Cq.Chase.contained_in ~fds q1 q2);
      let r1 = Cq.Eval.eval db q1 and r2 = Cq.Eval.eval db q2 in
      Relation.equal (Relation.inter r1 r2) r1)

let chase_extends_containment =
  prop "plain containment implies FD-containment" (QCheck.pair Generators.arbitrary_query Generators.arbitrary_query)
    (fun (q1, q2) ->
      QCheck.assume (Cq.Containment.contained_in q1 q2);
      Cq.Chase.contained_in ~fds q1 q2)

(* --- The multi-atom rewriting engine ---------------------------------------- *)

let view_of_atom v =
  let q = Tagged.atom_to_query v in
  Cq.Query.make ~name:"TheView" ~head:q.Cq.Query.head ~body:q.Cq.Query.body ()

let general_agrees_with_single_atom =
  prop_n 150 "multi-atom engine agrees with positionwise procedure"
    Generators.arbitrary_atom_pair (fun (q, v) ->
      let query = Tagged.atom_to_query q in
      let view = view_of_atom v in
      Bool.equal (RS.leq_atom q v) (Rewriting.Rewrite.rewritable ~views:[ view ] query))

let general_expansion_equivalent =
  prop_n 150 "found rewritings expand to equivalent queries"
    Generators.arbitrary_atom_pair (fun (q, v) ->
      let query = Tagged.atom_to_query q in
      let view = view_of_atom v in
      match Rewriting.Rewrite.find ~views:[ view ] query with
      | None -> QCheck.assume_fail ()
      | Some rw ->
        Cq.Containment.equivalent query (Rewriting.Expansion.expand ~views:[ view ] rw))

let general_semantic =
  (* Execute a found rewriting over materialized view answers and compare
     with direct evaluation. *)
  prop_n 150 "multi-atom rewritings are semantically faithful"
    Generators.arbitrary_atom_pair_db (fun ((q, v), db) ->
      let query = Tagged.atom_to_query q in
      let view = view_of_atom v in
      match Rewriting.Rewrite.find ~views:[ view ] query with
      | None -> QCheck.assume_fail ()
      | Some rw ->
        let view_answer = Cq.Eval.eval db view in
        let schema' =
          Relational.Schema.add
            { name = "TheView"; attrs = List.init (Cq.Query.head_arity view) (Printf.sprintf "c%d") }
            Generators.props_schema
        in
        let db' = Relational.Database.create schema' in
        let db' = Relational.Database.set_relation db' "TheView" view_answer in
        (* Copy the base relations so rewritings mixing base atoms work. *)
        let db' =
          List.fold_left
            (fun acc rel ->
              Relational.Database.set_relation acc rel (Relational.Database.relation db rel))
            db' [ "R"; "S" ]
        in
        Relational.Relation.equal (Cq.Eval.eval db' rw) (Cq.Eval.eval db query))

(* --- Labels and policies --------------------------------------------------- *)

let props_views =
  [
    Helpers.sview "W1(a, b, c) :- R(a, b, c)";
    Helpers.sview "W2(a, b) :- R(a, b, c)";
    Helpers.sview "W3(a) :- R(a, b, c)";
    Helpers.sview "W4(b, c) :- R(a, b, c)";
    Helpers.sview "W5(a, b) :- S(a, b)";
    Helpers.sview "W6(a) :- S(a, b)";
    Helpers.sview "W7() :- S(a, b)";
    Helpers.sview "W8(a, c) :- R(a, b, c)";
  ]

let props_pipeline = Pipeline.create props_views

let label_monotone =
  prop "labels are monotone in ⪯ (single atoms)" Generators.arbitrary_atom_pair
    (fun (a, b) ->
      QCheck.assume (RS.leq_atom a b);
      let la = Pipeline.label_atom props_pipeline a in
      let lb = Pipeline.label_atom props_pipeline b in
      Label.atom_leq la lb)

let label_sound =
  prop "ℓ⁺ views each answer the atom" Generators.arbitrary_tagged_atom (fun a ->
      let plus = Pipeline.plus_views props_pipeline a in
      List.for_all (fun v -> RS.leq_atom a v.Sview.atom) plus)

let label_complete =
  prop "ℓ⁺ misses no registered view" Generators.arbitrary_tagged_atom (fun a ->
      let plus = Pipeline.plus_views props_pipeline a in
      List.for_all
        (fun v -> List.exists (Sview.equal v) plus || not (RS.leq_atom a v.Sview.atom))
        props_views)

let policy_monotone =
  prop "policy coverage is ⪯-monotone" Generators.arbitrary_atom_pair (fun (a, b) ->
      QCheck.assume (RS.leq_atom a b);
      let registry = Pipeline.registry props_pipeline in
      let policy = Disclosure.Policy.stateless registry [ List.nth props_views 1 ] in
      let la = Pipeline.label_atoms props_pipeline [ a ] in
      let lb = Pipeline.label_atoms props_pipeline [ b ] in
      (not (Disclosure.Policy.allowed policy lb)) || Disclosure.Policy.allowed policy la)

let gen_ucq =
  QCheck.make
    ~print:(fun u -> Cq.Ucq.to_string u)
    QCheck.Gen.(
      let* arity_pick = Generators.gen_query in
      let arity = Cq.Query.head_arity arity_pick in
      let* extra =
        list_size (int_range 0 2)
          (Generators.gen_query
          |> map (fun q -> if Cq.Query.head_arity q = arity then Some q else None))
      in
      return (Cq.Ucq.make (arity_pick :: List.filter_map Fun.id extra)))

let ucq_minimize_equivalent =
  prop "UCQ minimize preserves equivalence" gen_ucq (fun u ->
      Cq.Ucq.equivalent u (Cq.Ucq.minimize u))

let ucq_eval_is_union =
  prop_n 200 "UCQ evaluation is the union of disjunct answers"
    (QCheck.pair gen_ucq Generators.arbitrary_database) (fun (u, db) ->
      let direct =
        List.fold_left
          (fun acc q -> Relation.union acc (Cq.Eval.eval db q))
          (Relation.empty (Cq.Ucq.head_arity u))
          u.Cq.Ucq.disjuncts
      in
      Relation.equal direct (Cq.Ucq.eval db u))

(* Note: only *non-redundant* disjuncts are below the union's label — a
   redundant disjunct is never answered individually and may well require
   more than the union (e.g. Q():-S(x) ∨ Q():-R(y),S(x), where the second
   disjunct folds away yet alone would need R-visibility). *)
let ucq_label_above_disjuncts =
  prop "UCQ label above every minimized disjunct label" gen_ucq (fun u ->
      let lu = Pipeline.label_ucq props_pipeline u in
      List.for_all
        (fun q -> Label.leq (Pipeline.label props_pipeline q) lu)
        (Cq.Ucq.minimize u).Cq.Ucq.disjuncts)

let ucq_minimize_semantics =
  prop_n 200 "UCQ minimize preserves answers"
    (QCheck.pair gen_ucq Generators.arbitrary_database) (fun (u, db) ->
      Relation.equal (Cq.Ucq.eval db u) (Cq.Ucq.eval db (Cq.Ucq.minimize u)))

let via_views_faithful =
  (* Definition 3.4 (c), constructively: when the label is not ⊤, the query's
     answer is computable from the labeled views alone. *)
  prop_n 300 "label sufficiency is constructive" Generators.arbitrary_query_db
    (fun (q, db) ->
      match Disclosure.Answer.via_views props_pipeline db q with
      | None -> QCheck.assume_fail ()
      | Some via -> Relation.equal via (Cq.Eval.eval db q))

let monitor_never_violates =
  (* Random submissions: every answered label stays covered by every partition
     still alive. *)
  prop_n 100 "monitor invariant" Generators.arbitrary_query (fun q ->
      let registry = Pipeline.registry props_pipeline in
      let policy =
        Disclosure.Policy.make registry
          [
            ("r", [ List.nth props_views 1; List.nth props_views 2 ]);
            ("s", [ List.nth props_views 4 ]);
          ]
      in
      let m = Disclosure.Monitor.create policy in
      let answered = ref [] in
      let l = Pipeline.label props_pipeline q in
      (match Disclosure.Monitor.submit m l with
      | Disclosure.Monitor.Answered -> answered := l :: !answered
      | Disclosure.Monitor.Refused _ -> ());
      let parts = Disclosure.Policy.partitions policy in
      let ok = ref true in
      Array.iteri
        (fun i p ->
          if Disclosure.Monitor.alive_mask m land (1 lsl i) <> 0 then
            List.iter
              (fun l ->
                if not (Disclosure.Policy.partition_covers p l) then ok := false)
              !answered)
        parts;
      !ok)

let suite =
  [
    leq_reflexive;
    leq_transitive;
    leq_iso_invariant;
    leq_matches_brute_force;
    mutual_leq_is_iso;
    witness_semantics;
    expansion_iso;
    glb_lower_bound;
    glb_commutative;
    glb_idempotent;
    glb_greatest;
    glb_sets_associative;
    glb_semantic_lower;
    minimize_equivalent;
    minimize_idempotent;
    minimize_minimal;
    minimize_minimal_bruteforce;
    minimize_semantics;
    containment_semantics;
    dissect_well_formed;
    dissect_renaming_invariant;
    dissect_label_above_atom_labels;
    chase_idempotent;
    chase_preserves_answers;
    chase_containment_sound;
    chase_extends_containment;
    general_agrees_with_single_atom;
    general_expansion_equivalent;
    general_semantic;
    label_monotone;
    label_sound;
    label_complete;
    policy_monotone;
    ucq_minimize_equivalent;
    ucq_eval_is_union;
    ucq_label_above_disjuncts;
    ucq_minimize_semantics;
    via_views_faithful;
    monitor_never_violates;
  ]
