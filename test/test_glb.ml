(* Tests for GenMGU and GLB computation (Section 5.1, Examples 4.4, 5.1–5.3,
   6.1), plus the lattice-theoretic GLB properties. *)

module Genmgu = Disclosure.Genmgu
module Glb = Disclosure.Glb
module RS = Disclosure.Rewrite_single
module Tagged = Disclosure.Tagged

let tatom = Helpers.tatom

let check_glb_is name expected a b =
  match Glb.singleton a b with
  | None -> Alcotest.failf "%s: expected a GLB, got bottom" name
  | Some g -> Alcotest.check Helpers.tagged_iso_testable name expected g

let check_glb_bottom name a b =
  match Glb.singleton a b with
  | None -> ()
  | Some g -> Alcotest.failf "%s: expected bottom, got %s" name (Tagged.atom_to_string g)

let test_example_4_4 () =
  (* GLBs of the Figure 4 projections. *)
  let open Helpers in
  check_glb_is "GLB(V6,V7) = V9" v9 v6 v7;
  check_glb_is "GLB(V6,V8) = V10" v10 v6 v8;
  check_glb_is "GLB(V7,V8) = V11" v11 v7 v8;
  (match Glb.of_many [ [ v6 ]; [ v7 ]; [ v8 ] ] with
  | [ g ] -> Alcotest.check Helpers.tagged_iso_testable "GLB(V6,V7,V8) = V12" v12 g
  | other -> Alcotest.failf "expected a single view, got %d" (List.length other));
  check_glb_is "GLB(V2,V4) = V5" v5 v2 v4

let test_example_5_1 () =
  let v13 = tatom "V13() :- M(9, 'Jim')" in
  let v14 = tatom "V14() :- M(x, y)" in
  check_glb_bottom "GLB(V13,V14) = bottom" v13 v14

let test_example_5_3 () =
  let v14 = tatom "V14() :- M(x, y)" in
  let v15 = tatom "V15() :- M(z, z)" in
  check_glb_bottom "GLB(V14,V15) = bottom" v14 v15

let test_constant_with_distinguished () =
  (* Unifying a constant with a distinguished variable yields the constant. *)
  let v13 = tatom "V13() :- Meetings(9, 'Jim')" in
  let v1 = Helpers.v1 in
  check_glb_is "GLB(V13,V1) = V13" v13 v13 v1

let test_diagonal_distinguished () =
  (* Two distinguished variables merge into a distinguished variable. *)
  let full = tatom "V(x, y) :- M(x, y)" in
  let diag = tatom "W(x) :- M(x, x)" in
  check_glb_is "GLB(full,diag) = diag" diag full diag

let test_different_relations_bottom () =
  check_glb_bottom "different relations" Helpers.v2 Helpers.v9

let test_idempotent () =
  List.iter
    (fun v -> check_glb_is "GLB(v,v) = v" v v v)
    (Helpers.fig3_universe @ Helpers.fig4_universe)

let test_commutative () =
  let pairs = [ (Helpers.v6, Helpers.v7); (Helpers.v2, Helpers.v4); (Helpers.v3, Helpers.v8) ] in
  List.iter
    (fun (a, b) ->
      match Glb.singleton a b, Glb.singleton b a with
      | Some g1, Some g2 ->
        Alcotest.check Helpers.tagged_iso_testable "commutative" g1 g2
      | None, None -> ()
      | _ -> Alcotest.fail "commutativity broken: one side bottom")
    pairs

let test_glb_is_lower_bound () =
  let universe = Helpers.fig3_universe @ Helpers.fig4_universe in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match Glb.singleton a b with
          | None -> ()
          | Some g ->
            Helpers.check_bool "g <= a" true (RS.leq_atom g a);
            Helpers.check_bool "g <= b" true (RS.leq_atom g b))
        universe)
    universe

let test_glb_is_greatest () =
  (* Any universe view below both operands is below the GLB. *)
  let universe = Helpers.fig3_universe @ Helpers.fig4_universe in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let lower =
            List.filter (fun x -> RS.leq_atom x a && RS.leq_atom x b) universe
          in
          let glb = match Glb.singleton a b with Some g -> [ g ] | None -> [] in
          List.iter
            (fun x ->
              Helpers.check_bool
                (Printf.sprintf "%s <= GLB(%s, %s)" (Tagged.atom_to_string x)
                   (Tagged.atom_to_string a) (Tagged.atom_to_string b))
                true (RS.leq [ x ] glb))
            lower)
        universe)
    universe

let test_of_sets () =
  (* GLB of view sets: pairwise singleton GLBs, reduced. *)
  let open Helpers in
  let g = Glb.of_sets [ v6; v7 ] [ v8 ] in
  (* GLB(V6,V8)=V10, GLB(V7,V8)=V11: both survive as incomparable. *)
  Helpers.check_int "two incomparable views" 2 (List.length g);
  Helpers.check_bool "contains v10" true (List.exists (Tagged.iso_equivalent v10) g);
  Helpers.check_bool "contains v11" true (List.exists (Tagged.iso_equivalent v11) g)

let test_reduce_drops_dominated () =
  let open Helpers in
  let reduced = Glb.reduce [ v5; v2; v1 ] in
  Helpers.check_int "only the top survives" 1 (List.length reduced);
  Helpers.check_bool "v1 kept" true (List.exists (Tagged.iso_equivalent v1) reduced)

let test_dedup () =
  let a = tatom "A(x) :- M(x, y)" in
  let b = tatom "B(p) :- M(p, q)" in
  Helpers.check_int "iso duplicates removed" 1 (List.length (Glb.dedup [ a; b ]))

let test_of_many_invalid () =
  Alcotest.check_raises "empty of_many" (Invalid_argument "Glb.of_many: empty list")
    (fun () -> ignore (Glb.of_many []))

let suite =
  [
    Alcotest.test_case "Example 4.4 projection GLBs" `Quick test_example_4_4;
    Alcotest.test_case "Example 5.1 constant/existential" `Quick test_example_5_1;
    Alcotest.test_case "Example 5.3 forced equality" `Quick test_example_5_3;
    Alcotest.test_case "constant with distinguished" `Quick test_constant_with_distinguished;
    Alcotest.test_case "diagonal distinguished" `Quick test_diagonal_distinguished;
    Alcotest.test_case "different relations" `Quick test_different_relations_bottom;
    Alcotest.test_case "idempotent" `Quick test_idempotent;
    Alcotest.test_case "commutative" `Quick test_commutative;
    Alcotest.test_case "GLB is a lower bound" `Quick test_glb_is_lower_bound;
    Alcotest.test_case "GLB is greatest" `Quick test_glb_is_greatest;
    Alcotest.test_case "set GLB" `Quick test_of_sets;
    Alcotest.test_case "reduce drops dominated" `Quick test_reduce_drops_dominated;
    Alcotest.test_case "dedup up to iso" `Quick test_dedup;
    Alcotest.test_case "of_many on empty" `Quick test_of_many_invalid;
  ]
