(* Tests for disclosure orders (Definition 3.1) and the explicit disclosure
   lattice (Theorems 3.3, 3.6, 3.7, 4.8; Figure 3). *)

module Order = Disclosure.Order
module Lattice = Disclosure.Lattice
module Tagged = Disclosure.Tagged

let rewriting = Order.rewriting

let fig3 () = Lattice.build ~order:rewriting ~universe:Helpers.fig3_universe

let test_order_properties () =
  (* Definition 3.1 (a): W1 ⊆ W2 implies W1 ⪯ W2. *)
  let u = Helpers.fig3_universe in
  let subsets =
    [ []; [ Helpers.v2 ]; [ Helpers.v2; Helpers.v4 ]; u ]
  in
  List.iter
    (fun w1 ->
      List.iter
        (fun w2 ->
          let subset = List.for_all (fun v -> List.memq v w2) w1 in
          if subset then
            Helpers.check_bool "monotone under subset" true (Order.leq rewriting w1 w2))
        subsets)
    subsets;
  (* Definition 3.1 (b): unions of lower sets stay lower. *)
  Helpers.check_bool "union property" true
    (Order.leq rewriting [ Helpers.v2; Helpers.v4; Helpers.v5 ] [ Helpers.v1 ])

let test_order_preorder () =
  let u = Helpers.fig4_universe in
  List.iter (fun v -> Helpers.check_bool "reflexive" true (Order.leq rewriting [ v ] [ v ])) u;
  (* transitivity sample over the universe *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if Order.leq rewriting [ a ] [ b ] && Order.leq rewriting [ b ] [ c ] then
                Helpers.check_bool "transitive" true (Order.leq rewriting [ a ] [ c ]))
            u)
        u)
    u

let test_subset_order () =
  let ord = Order.subset ~equal:String.equal ~pp:Format.pp_print_string in
  Helpers.check_bool "subset leq" true (Order.leq ord [ "a" ] [ "a"; "b" ]);
  Helpers.check_bool "subset not leq" false (Order.leq ord [ "c" ] [ "a"; "b" ]);
  Helpers.check_bool "equiv as sets" true (Order.equiv ord [ "a"; "b" ] [ "b"; "a" ])

let test_down () =
  let d = Order.down rewriting ~universe:Helpers.fig3_universe [ Helpers.v2 ] in
  Helpers.check_int "down {V2} = {V2, V5}" 2 (List.length d)

let test_fig3_structure () =
  let l = fig3 () in
  Helpers.check_int "six elements" 6 (Lattice.size l);
  let d2 = Lattice.down l [ Helpers.v2 ] in
  let d4 = Lattice.down l [ Helpers.v4 ] in
  let d5 = Lattice.down l [ Helpers.v5 ] in
  let d24 = Lattice.down l [ Helpers.v2; Helpers.v4 ] in
  Helpers.check_bool "GLB(⇓V2,⇓V4) = ⇓V5" true (Lattice.glb l d2 d4 = d5);
  Helpers.check_bool "LUB(⇓V2,⇓V4) = ⇓{V2,V4}" true (Lattice.lub l d2 d4 = d24);
  Helpers.check_bool "LUB below top" true
    (Lattice.lub l d2 d4 <> Lattice.top l && Lattice.leq (Lattice.lub l d2 d4) (Lattice.top l));
  Helpers.check_bool "bottom below all" true
    (List.for_all (Lattice.leq (Lattice.bottom l)) (Lattice.elements l));
  Helpers.check_bool "all below top" true
    (List.for_all (fun e -> Lattice.leq e (Lattice.top l)) (Lattice.elements l))

let test_fig3_hasse () =
  let l = fig3 () in
  (* ⊥ — ⇓V5 — (⇓V2, ⇓V4) — ⇓{V2,V4} — ⊤: 6 edges. *)
  Helpers.check_int "hasse edge count" 6 (List.length (Lattice.covers l))

let test_lattice_laws () =
  let l = Lattice.build ~order:rewriting ~universe:Helpers.fig4_universe in
  let elems = Lattice.elements l in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let g = Lattice.glb l a b and u = Lattice.lub l a b in
          Helpers.check_bool "glb lower" true (Lattice.leq g a && Lattice.leq g b);
          Helpers.check_bool "lub upper" true (Lattice.leq a u && Lattice.leq b u);
          (* absorption *)
          Helpers.check_bool "absorption glb" true (Lattice.lub l a g = a);
          Helpers.check_bool "absorption lub" true (Lattice.glb l a u = a))
        elems)
    elems

let test_distributive_and_decomposable () =
  let l = fig3 () in
  Helpers.check_bool "Fig 3 universe decomposable" true (Lattice.is_decomposable l);
  Helpers.check_bool "hence distributive (Thm 4.8)" true (Lattice.is_distributive l)

let test_labeler_existence_example_3_5 () =
  (* Example 3.5: F = power set of {V2, V4} does not induce a labeler because
     K misses ⇓V5's lower bound behaviour. *)
  let l = fig3 () in
  let k_bad =
    [
      Lattice.down l [];
      Lattice.down l [ Helpers.v2 ];
      Lattice.down l [ Helpers.v4 ];
      Lattice.down l [ Helpers.v2; Helpers.v4 ];
      Lattice.top l;
    ]
  in
  Helpers.check_bool "Example 3.5: no labeler" false (Lattice.labeler_exists l k_bad);
  (* Adding ⇓V5 (the GLB closure) fixes it. *)
  let k_good = Lattice.down l [ Helpers.v5 ] :: k_bad in
  Helpers.check_bool "GLB-closed family induces labeler" true (Lattice.labeler_exists l k_good)

let test_lattice_label () =
  let l = fig3 () in
  let k =
    [
      Lattice.bottom l;
      Lattice.down l [ Helpers.v5 ];
      Lattice.down l [ Helpers.v2 ];
      Lattice.down l [ Helpers.v4 ];
      Lattice.down l [ Helpers.v2; Helpers.v4 ];
      Lattice.top l;
    ]
  in
  Helpers.check_bool "labeler exists" true (Lattice.labeler_exists l k);
  (* ℓ(⇓V5) = ⇓V5 (fixpoint), ℓ(⇓V1) = ⊤. *)
  Helpers.check_bool "fixpoint" true
    (Lattice.label l k (Lattice.down l [ Helpers.v5 ]) = Some (Lattice.down l [ Helpers.v5 ]));
  Helpers.check_bool "top maps to top" true
    (Lattice.label l k (Lattice.top l) = Some (Lattice.top l));
  (* Labeler axioms (Definition 3.4) on the whole lattice. *)
  List.iter
    (fun e ->
      match Lattice.label l k e with
      | None -> Alcotest.fail "label must exist"
      | Some le ->
        Helpers.check_bool "axiom (c): never underestimates" true (Lattice.leq e le);
        List.iter
          (fun e' ->
            if Lattice.leq e e' then
              match Lattice.label l k e' with
              | None -> Alcotest.fail "label must exist"
              | Some le' -> Helpers.check_bool "axiom (d): monotone" true (Lattice.leq le le'))
          (Lattice.elements l))
    (Lattice.elements l)

let test_lattice_of_labels () =
  let l = fig3 () in
  let k = [ Lattice.bottom l; Lattice.down l [ Helpers.v2 ]; Lattice.top l ] in
  let labels = Lattice.lattice_of_labels l k in
  Helpers.check_int "three label classes" 3 (List.length labels)

let test_universe_too_large () =
  let views = List.init 17 (fun i -> Helpers.tatom (Printf.sprintf "V%d() :- R%d(x)" i i)) in
  Alcotest.check_raises "cap at 16" (Lattice.Universe_too_large 17) (fun () ->
      ignore (Lattice.build ~order:rewriting ~universe:views))

let test_to_dot () =
  let l = fig3 () in
  let dot = Lattice.to_dot l in
  Helpers.check_bool "mentions digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let suite =
  [
    Alcotest.test_case "Definition 3.1 properties" `Quick test_order_properties;
    Alcotest.test_case "preorder laws" `Quick test_order_preorder;
    Alcotest.test_case "subset order" `Quick test_subset_order;
    Alcotest.test_case "down operator" `Quick test_down;
    Alcotest.test_case "Figure 3 structure" `Quick test_fig3_structure;
    Alcotest.test_case "Figure 3 Hasse diagram" `Quick test_fig3_hasse;
    Alcotest.test_case "lattice laws" `Quick test_lattice_laws;
    Alcotest.test_case "distributivity / decomposability" `Quick test_distributive_and_decomposable;
    Alcotest.test_case "Example 3.5 labeler existence" `Quick test_labeler_existence_example_3_5;
    Alcotest.test_case "lattice labeler + axioms" `Quick test_lattice_label;
    Alcotest.test_case "lattice of labels" `Quick test_lattice_of_labels;
    Alcotest.test_case "universe size cap" `Quick test_universe_too_large;
    Alcotest.test_case "dot export" `Quick test_to_dot;
  ]
