(* Tests for security policies and the reference monitor (Sections 3.4 and
   6.2, Examples 6.2 and 6.3). *)

module Pipeline = Disclosure.Pipeline
module Policy = Disclosure.Policy
module Monitor = Disclosure.Monitor
module Label = Disclosure.Label

let pq = Helpers.pq
let sview = Helpers.sview

let v1 = sview "V1(x, y) :- Meetings(x, y)"
let v2 = sview "V2(x) :- Meetings(x, y)"
let v3 = sview "V3(x, y, z) :- Contacts(x, y, z)"
let v6 = sview "V6(x, y) :- Contacts(x, y, z)"
let v7 = sview "V7(x, z) :- Contacts(x, y, z)"

let pipeline = Pipeline.create [ v1; v2; v3; v6; v7 ]

let registry = Pipeline.registry pipeline

let label s = Pipeline.label pipeline (pq s)

let decision_testable = Alcotest.testable Monitor.pp_decision Monitor.decision_equal

let test_stateless_allow () =
  let policy = Policy.stateless registry [ v2 ] in
  Helpers.check_bool "time slots allowed" true
    (Policy.allowed policy (label "Q(x) :- Meetings(x, y)"));
  Helpers.check_bool "full table refused" false
    (Policy.allowed policy (label "Q(x, y) :- Meetings(x, y)"));
  Helpers.check_bool "boolean allowed" true
    (Policy.allowed policy (label "Q() :- Meetings(x, y)"))

let test_policy_cross_relation () =
  let policy = Policy.stateless registry [ v2; v3 ] in
  Helpers.check_bool "contacts allowed" true
    (Policy.allowed policy (label "Q(x, y, z) :- Contacts(x, y, z)"));
  (* The Figure 1 join query needs V1, which the policy does not grant. *)
  Helpers.check_bool "join refused" false
    (Policy.allowed policy (label "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')"))

let test_policy_top_refused () =
  let policy = Policy.stateless registry [ v1; v2; v3; v6; v7 ] in
  Helpers.check_bool "unknown relation refused" false
    (Policy.allowed policy (label "Q(x) :- Unknown(x)"))

let test_policy_empty_error () =
  Alcotest.check_raises "no partitions" (Invalid_argument "Policy.make: no partitions")
    (fun () -> ignore (Policy.make registry []))

let test_monitor_stateless () =
  let m = Monitor.create (Policy.stateless registry [ v2 ]) in
  Alcotest.check decision_testable "allowed" Monitor.Answered
    (Monitor.submit m (label "Q(x) :- Meetings(x, y)"));
  Alcotest.check decision_testable "refused" (Monitor.Refused Disclosure.Guard.Policy)
    (Monitor.submit m (label "Q(x, y) :- Meetings(x, y)"));
  Alcotest.check decision_testable "still allowed after refusal" Monitor.Answered
    (Monitor.submit m (label "Q() :- Meetings(x, y)"));
  Helpers.check_int "answered count" 2 (Monitor.answered_count m);
  Helpers.check_int "refused count" 1 (Monitor.refused_count m)

let test_monitor_chinese_wall () =
  (* Example 6.2: either Meetings or Contacts, but not both. *)
  let policy = Policy.make registry [ ("meetings", [ v1; v2 ]); ("contacts", [ v3; v6; v7 ]) ] in
  let m = Monitor.create policy in
  Alcotest.check
    Alcotest.(list string)
    "both alive initially" [ "meetings"; "contacts" ] (Monitor.alive m);
  (* V6 is covered by the contacts partition only. *)
  Alcotest.check decision_testable "V6 answered" Monitor.Answered
    (Monitor.submit m (label "Q(x, y) :- Contacts(x, y, z)"));
  Alcotest.check Alcotest.(list string) "wall chosen" [ "contacts" ] (Monitor.alive m);
  (* V7 still fine under the same partition (Example 6.3: bit vector stays
     <1,0> in the paper's numbering). *)
  Alcotest.check decision_testable "V7 answered" Monitor.Answered
    (Monitor.submit m (label "Q(x, z) :- Contacts(x, y, z)"));
  Alcotest.check Alcotest.(list string) "unchanged" [ "contacts" ] (Monitor.alive m);
  (* Crossing the wall: a Meetings query is now refused even though the
     meetings partition would have covered it initially. *)
  Alcotest.check decision_testable "V2 refused" (Monitor.Refused Disclosure.Guard.Policy)
    (Monitor.submit m (label "Q(x) :- Meetings(x, y)"));
  Alcotest.check
    Alcotest.(list string)
    "state unchanged by refusal" [ "contacts" ] (Monitor.alive m)

let test_monitor_narrowing () =
  (* A query covered by both partitions keeps both alive; a later query
     narrows the choice. *)
  let policy =
    Policy.make registry [ ("a", [ v2; v3 ]); ("b", [ v1 ]) ]
  in
  let m = Monitor.create policy in
  Alcotest.check decision_testable "covered by both" Monitor.Answered
    (Monitor.submit m (label "Q(x) :- Meetings(x, y)"));
  Helpers.check_int "both alive" 2 (List.length (Monitor.alive m));
  Alcotest.check decision_testable "contacts narrows to a" Monitor.Answered
    (Monitor.submit m (label "Q(x, y, z) :- Contacts(x, y, z)"));
  Alcotest.check Alcotest.(list string) "only a" [ "a" ] (Monitor.alive m);
  (* Now the full Meetings table (only under b) must be refused. *)
  Alcotest.check decision_testable "b is dead" (Monitor.Refused Disclosure.Guard.Policy)
    (Monitor.submit m (label "Q(x, y) :- Meetings(x, y)"))

let test_monitor_reset () =
  let policy = Policy.make registry [ ("meetings", [ v1 ]); ("contacts", [ v3 ]) ] in
  let m = Monitor.create policy in
  ignore (Monitor.submit m (label "Q(x, y) :- Meetings(x, y)"));
  Helpers.check_int "narrowed" 1 (List.length (Monitor.alive m));
  Monitor.reset m;
  Helpers.check_int "restored" 2 (List.length (Monitor.alive m));
  Helpers.check_int "counters cleared" 0 (Monitor.answered_count m)

let test_monitor_submit_query () =
  let m = Monitor.create (Policy.stateless registry [ v2 ]) in
  Alcotest.check decision_testable "submit_query" Monitor.Answered
    (Monitor.submit_query m pipeline (pq "Q(x) :- Meetings(x, y)"))

let test_monitor_cumulative_invariant () =
  (* The invariant of Section 6.2: after any sequence of submissions, the set
     of answered queries is below some partition. We track answered labels and
     check the invariant against the alive partitions directly. *)
  let policy = Policy.make registry [ ("meetings", [ v1; v2 ]); ("contacts", [ v3; v6; v7 ]) ] in
  let m = Monitor.create policy in
  let queries =
    [
      "Q(x) :- Meetings(x, y)";
      "Q(x, y) :- Meetings(x, y)";
      "Q(x, y) :- Contacts(x, y, z)";
      "Q() :- Meetings(x, y)";
      "Q(x, y, z) :- Contacts(x, y, z)";
    ]
  in
  let answered = ref [] in
  List.iter
    (fun s ->
      let l = label s in
      match Monitor.submit m l with
      | Monitor.Answered -> answered := l :: !answered
      | Monitor.Refused _ -> ())
    queries;
  let alive = Monitor.alive m in
  Helpers.check_bool "some partition alive" true (alive <> []);
  (* Every answered label must be covered by every alive partition. *)
  Array.iteri
    (fun i p ->
      if Monitor.alive_mask m land (1 lsl i) <> 0 then
        List.iter
          (fun l -> Helpers.check_bool "invariant" true (Policy.partition_covers p l))
          !answered)
    (Policy.partitions (Monitor.policy m))

let test_too_many_partitions () =
  let parts = List.init 63 (fun i -> (Printf.sprintf "p%d" i, [ v1 ])) in
  (* Validated at policy construction, with a message naming the count. *)
  Alcotest.check_raises "62 partition cap"
    (Invalid_argument
       "Policy.make: 63 partitions, but the monitor's alive set is one machine word \
        (max 62)") (fun () -> ignore (Policy.make registry parts));
  Helpers.check_bool "cap constant exposed" true (Policy.max_partitions = 62)

let suite =
  [
    Alcotest.test_case "stateless allow/refuse" `Quick test_stateless_allow;
    Alcotest.test_case "cross-relation policy" `Quick test_policy_cross_relation;
    Alcotest.test_case "top refused" `Quick test_policy_top_refused;
    Alcotest.test_case "empty policy error" `Quick test_policy_empty_error;
    Alcotest.test_case "stateless monitor" `Quick test_monitor_stateless;
    Alcotest.test_case "Chinese Wall (Examples 6.2, 6.3)" `Quick test_monitor_chinese_wall;
    Alcotest.test_case "partition narrowing" `Quick test_monitor_narrowing;
    Alcotest.test_case "monitor reset" `Quick test_monitor_reset;
    Alcotest.test_case "submit_query" `Quick test_monitor_submit_query;
    Alcotest.test_case "cumulative invariant" `Quick test_monitor_cumulative_invariant;
    Alcotest.test_case "partition cap" `Quick test_too_many_partitions;
  ]
