(* Tests for homomorphisms, containment, equivalence, minimization, and
   evaluation — the Chandra–Merlin machinery the labeler builds on. *)

module Query = Cq.Query
module Hom = Cq.Homomorphism
module Cont = Cq.Containment
module Minimize = Cq.Minimize
module Eval = Cq.Eval
module Relation = Relational.Relation
module Tuple = Relational.Tuple

let pq = Helpers.pq

let test_hom_exists () =
  (* R(x, y) maps into R(x, x) (collapse). *)
  let general = pq "Q() :- R(x, y)" in
  let diagonal = pq "Q() :- R(z, z)" in
  Helpers.check_bool "general -> diagonal" true (Hom.exists ~from:general ~into:diagonal ());
  Helpers.check_bool "diagonal -> general" false (Hom.exists ~from:diagonal ~into:general ())

let test_hom_respects_head () =
  let q1 = pq "Q(x) :- R(x, y)" in
  let q2 = pq "Q(y) :- R(x, y)" in
  Helpers.check_bool "head position blocks" false (Hom.exists ~from:q1 ~into:q2 ());
  Helpers.check_bool "identity" true (Hom.exists ~from:q1 ~into:q1 ())

let test_hom_constants () =
  let const = pq "Q() :- R(1, y)" in
  let free = pq "Q() :- R(x, y)" in
  Helpers.check_bool "var maps to const" true (Hom.exists ~from:free ~into:const ());
  Helpers.check_bool "const cannot map to var" false (Hom.exists ~from:const ~into:free ())

let test_containment_classic () =
  (* Q1 asks for meetings with Cathy; more specific than all meetings. *)
  let specific = pq "Q(x) :- Meetings(x, 'Cathy')" in
  let general = pq "Q(x) :- Meetings(x, y)" in
  Helpers.check_bool "specific ⊆ general" true (Cont.contained_in specific general);
  Helpers.check_bool "general ⊄ specific" false (Cont.contained_in general specific)

let test_containment_join () =
  let path2 = pq "Q(x, z) :- E(x, y), E(y, z)" in
  let loop = pq "Q(x, x) :- E(x, x)" in
  Helpers.check_bool "loop ⊆ path2" true (Cont.contained_in loop path2);
  Helpers.check_bool "path2 ⊄ loop" false (Cont.contained_in path2 loop)

let test_containment_arity () =
  Helpers.check_bool "different head arity incomparable" false
    (Cont.contained_in (pq "Q(x) :- R(x)") (pq "Q(x, y) :- R(x), R(y)"))

let test_equivalent_renaming () =
  let q1 = pq "Q(x) :- R(x, y), S(y)" in
  let q2 = pq "P(a) :- S(b), R(a, b)" in
  Helpers.check_bool "equivalent up to renaming and order" true (Cont.equivalent q1 q2)

let test_minimize_redundant_atom () =
  (* The second R atom folds onto the first. *)
  let q = pq "Q(x) :- R(x, y), R(x, z)" in
  let m = Minimize.minimize q in
  Helpers.check_int "one atom survives" 1 (List.length m.Query.body);
  Alcotest.check Helpers.query_equiv_testable "equivalent" q m;
  Helpers.check_bool "minimal" true (Minimize.is_minimal m)

let test_minimize_keeps_constants () =
  (* R(x, 'a') does not fold onto R(x, y) or vice versa when both needed. *)
  let q = pq "Q(x) :- R(x, y), R(x, 'a')" in
  let m = Minimize.minimize q in
  Helpers.check_int "folds to constant atom" 1 (List.length m.Query.body);
  Alcotest.check Helpers.query_equiv_testable "equivalent" q m

let test_minimize_irreducible () =
  let q = pq "Q(x, z) :- E(x, y), E(y, z)" in
  let m = Minimize.minimize q in
  Helpers.check_int "path is minimal" 2 (List.length m.Query.body);
  Helpers.check_bool "reported minimal" true (Minimize.is_minimal q)

let test_minimize_head_protection () =
  (* Removing the S atom would strand head variable z. *)
  let q = pq "Q(x, z) :- R(x, y), S(z)" in
  let m = Minimize.minimize q in
  Helpers.check_int "both atoms needed" 2 (List.length m.Query.body)

let test_minimize_triangle () =
  (* Classic: a triangle with a pendant edge that folds in. *)
  let q = pq "Q() :- E(x, y), E(y, z), E(z, x), E(x, w)" in
  let m = Minimize.minimize q in
  Helpers.check_int "pendant folds" 3 (List.length m.Query.body);
  Alcotest.check Helpers.query_equiv_testable "equivalent" q m

let eval_rows q =
  Eval.eval Helpers.fig1_db (pq q) |> Relation.tuples |> List.map Tuple.to_string

let test_eval_fig1 () =
  Alcotest.check
    Alcotest.(list string)
    "Q1: meetings with Cathy" [ "(10)" ]
    (eval_rows "Q1(x) :- Meetings(x, 'Cathy')");
  Alcotest.check
    Alcotest.(list string)
    "Q2: meetings with interns" [ "(10)" ]
    (eval_rows "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
  Alcotest.check
    Alcotest.(list string)
    "projection" [ "(10)"; "(12)"; "(9)" ]
    (eval_rows "V2(x) :- Meetings(x, y)" |> List.sort String.compare)

let test_eval_boolean () =
  Helpers.check_bool "nonempty" true (Eval.holds Helpers.fig1_db (pq "B() :- Meetings(x, y)"));
  Helpers.check_bool "no match" false
    (Eval.holds Helpers.fig1_db (pq "B() :- Meetings(x, 'Nobody')"))

let test_eval_join_semantics () =
  (* Self-join with shared variable. *)
  let q = pq "Q(p) :- Meetings(t, p), Contacts(p, e, r)" in
  let rows = Eval.eval Helpers.fig1_db q in
  Helpers.check_int "all three people meet" 3 (Relation.cardinal rows)

let test_eval_errors () =
  Alcotest.check_raises "unknown relation" (Eval.Eval_error "unknown relation Nope")
    (fun () -> ignore (Eval.eval Helpers.fig1_db (pq "Q(x) :- Nope(x)")));
  Helpers.check_bool "arity mismatch raises" true
    (try
       ignore (Eval.eval Helpers.fig1_db (pq "Q(x) :- Meetings(x)"));
       false
     with Eval.Eval_error _ -> true)

let test_eval_constants_in_head () =
  let q = pq "Q(x, 'tag') :- Meetings(x, 'Cathy')" in
  let rows = Eval.eval Helpers.fig1_db q in
  Alcotest.check
    Alcotest.(list string)
    "constant column" [ "(10, 'tag')" ]
    (Relation.tuples rows |> List.map Tuple.to_string)

let test_containment_respects_semantics () =
  (* If q1 ⊆ q2 then answers on the Figure 1 instance are a subset. *)
  let pairs =
    [
      ("Q(x) :- Meetings(x, 'Cathy')", "Q(x) :- Meetings(x, y)");
      ("Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", "Q(x) :- Meetings(x, y)");
    ]
  in
  List.iter
    (fun (s1, s2) ->
      let q1 = pq s1 and q2 = pq s2 in
      Helpers.check_bool "containment holds" true (Cont.contained_in q1 q2);
      let r1 = Eval.eval Helpers.fig1_db q1 and r2 = Eval.eval Helpers.fig1_db q2 in
      Helpers.check_bool "answers subset" true
        (Relation.equal (Relation.inter r1 r2) r1))
    pairs

let suite =
  [
    Alcotest.test_case "homomorphism existence" `Quick test_hom_exists;
    Alcotest.test_case "homomorphism respects head" `Quick test_hom_respects_head;
    Alcotest.test_case "homomorphism constants" `Quick test_hom_constants;
    Alcotest.test_case "containment classic" `Quick test_containment_classic;
    Alcotest.test_case "containment join" `Quick test_containment_join;
    Alcotest.test_case "containment arity" `Quick test_containment_arity;
    Alcotest.test_case "equivalence up to renaming" `Quick test_equivalent_renaming;
    Alcotest.test_case "minimize redundant atom" `Quick test_minimize_redundant_atom;
    Alcotest.test_case "minimize with constants" `Quick test_minimize_keeps_constants;
    Alcotest.test_case "minimize irreducible" `Quick test_minimize_irreducible;
    Alcotest.test_case "minimize protects head" `Quick test_minimize_head_protection;
    Alcotest.test_case "minimize triangle" `Quick test_minimize_triangle;
    Alcotest.test_case "eval Figure 1 queries" `Quick test_eval_fig1;
    Alcotest.test_case "eval boolean" `Quick test_eval_boolean;
    Alcotest.test_case "eval join" `Quick test_eval_join_semantics;
    Alcotest.test_case "eval errors" `Quick test_eval_errors;
    Alcotest.test_case "eval constants in head" `Quick test_eval_constants_in_head;
    Alcotest.test_case "containment vs semantics" `Quick test_containment_respects_semantics;
  ]
