(* Tests for the relational substrate: Value, Schema, Tuple, Relation,
   Database. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Db = Relational.Database

let test_value_order () =
  Helpers.check_bool "int < str" true (Value.compare (Value.Int 5) (Value.Str "a") < 0);
  Helpers.check_bool "str < bool" true
    (Value.compare (Value.Str "z") (Value.Bool false) < 0);
  Helpers.check_bool "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Helpers.check_bool "equal reflexive" true (Value.equal (Value.Str "x") (Value.Str "x"));
  Helpers.check_bool "hash consistent" true
    (Value.hash (Value.Int 7) = Value.hash (Value.Int 7))

let test_value_roundtrip () =
  let cases = [ Value.Int 42; Value.Int (-3); Value.Str "Jim"; Value.Bool true ] in
  List.iter
    (fun v ->
      Alcotest.check Helpers.value_testable "to_string/of_string roundtrip"
        v
        (Value.of_string (Value.to_string v)))
    cases;
  Alcotest.check Helpers.value_testable "unquoted string" (Value.Str "hello")
    (Value.of_string "hello");
  Alcotest.check Helpers.value_testable "bare int" (Value.Int 9) (Value.of_string "9")

let test_schema_basics () =
  let s = Helpers.fig1_schema in
  Helpers.check_int "two relations" 2 (Schema.size s);
  Helpers.check_int "meetings arity" 2 (Option.get (Schema.arity s "Meetings"));
  Helpers.check_int "contacts arity" 3 (Schema.arity_exn s "Contacts");
  Helpers.check_bool "mem" true (Schema.mem s "Meetings");
  Helpers.check_bool "not mem" false (Schema.mem s "Nope");
  let r = Schema.find_exn s "Contacts" in
  Helpers.check_int "attr index" 2 (Option.get (Schema.attr_index r "position"));
  Helpers.check_bool "attr missing" true (Schema.attr_index r "nope" = None);
  Alcotest.check Alcotest.(list string) "names in order" [ "Meetings"; "Contacts" ]
    (Schema.relation_names s)

let test_schema_errors () =
  Alcotest.check_raises "duplicate relation" (Schema.Duplicate_relation "R") (fun () ->
      ignore
        (Schema.of_list
           [ { name = "R"; attrs = [ "a" ] }; { name = "R"; attrs = [ "b" ] } ]));
  Alcotest.check_raises "duplicate attribute" (Schema.Duplicate_attribute ("R", "a"))
    (fun () -> ignore (Schema.of_list [ { name = "R"; attrs = [ "a"; "a" ] } ]));
  Alcotest.check_raises "unknown relation" (Schema.Unknown_relation "X") (fun () ->
      ignore (Schema.find_exn Helpers.fig1_schema "X"))

let test_tuple () =
  let t = Tuple.of_strings [ "9"; "Jim" ] in
  Helpers.check_int "arity" 2 (Tuple.arity t);
  Alcotest.check Helpers.value_testable "get" (Value.Int 9) (Tuple.get t 0);
  Alcotest.check Helpers.tuple_testable "project" (Tuple.of_strings [ "Jim"; "9" ])
    (Tuple.project t [ 1; 0 ]);
  Helpers.check_bool "compare lexicographic" true
    (Tuple.compare (Tuple.of_strings [ "1"; "a" ]) (Tuple.of_strings [ "1"; "b" ]) < 0);
  Helpers.check_bool "shorter first" true
    (Tuple.compare (Tuple.of_strings [ "9" ]) (Tuple.of_strings [ "1"; "1" ]) < 0);
  Alcotest.check_raises "out of range" (Invalid_argument "Tuple.get: index 5 out of range")
    (fun () -> ignore (Tuple.get t 5))

let test_relation_set_semantics () =
  let r = Relation.of_rows 2 [ [ "1"; "a" ]; [ "1"; "a" ]; [ "2"; "b" ] ] in
  Helpers.check_int "duplicates absorbed" 2 (Relation.cardinal r);
  Helpers.check_bool "mem" true (Relation.mem (Tuple.of_strings [ "1"; "a" ]) r);
  Helpers.check_bool "not mem" false (Relation.mem (Tuple.of_strings [ "3"; "c" ]) r)

let test_relation_ops () =
  let r = Relation.of_rows 2 [ [ "1"; "a" ]; [ "2"; "a" ]; [ "3"; "b" ] ] in
  let p = Relation.project r [ 1 ] in
  Helpers.check_int "projection dedups" 2 (Relation.cardinal p);
  let r2 = Relation.of_rows 2 [ [ "1"; "a" ]; [ "9"; "z" ] ] in
  Helpers.check_int "union" 4 (Relation.cardinal (Relation.union r r2));
  Helpers.check_int "inter" 1 (Relation.cardinal (Relation.inter r r2));
  Helpers.check_bool "filter" true
    (Relation.cardinal (Relation.filter (fun t -> Tuple.get t 1 = Value.Str "a") r) = 2)

let test_relation_arity_mismatch () =
  let r = Relation.empty 2 in
  Alcotest.check_raises "add wrong arity"
    (Relation.Arity_mismatch { expected = 2; got = 3 }) (fun () ->
      ignore (Relation.add (Tuple.of_strings [ "a"; "b"; "c" ]) r))

let test_database () =
  let db = Helpers.fig1_db in
  Helpers.check_int "meetings rows" 3 (Relation.cardinal (Db.relation db "Meetings"));
  Helpers.check_int "total tuples" 6 (Db.total_tuples db);
  Alcotest.check_raises "unknown relation" (Db.Unknown_relation "X") (fun () ->
      ignore (Db.relation db "X"));
  let db2 = Db.insert db "Meetings" (Tuple.of_strings [ "14"; "Eve" ]) in
  Helpers.check_int "functional update" 3 (Relation.cardinal (Db.relation db "Meetings"));
  Helpers.check_int "inserted" 4 (Relation.cardinal (Db.relation db2 "Meetings"))

let test_database_set_relation () =
  let db = Db.create Helpers.fig1_schema in
  Alcotest.check_raises "schema arity enforced"
    (Relation.Arity_mismatch { expected = 2; got = 1 }) (fun () ->
      ignore (Db.set_relation db "Meetings" (Relation.empty 1)));
  let db = Db.set_relation db "Meetings" (Relation.of_rows 2 [ [ "9"; "Jim" ] ]) in
  Helpers.check_int "replaced" 1 (Relation.cardinal (Db.relation db "Meetings"))

let suite =
  [
    Alcotest.test_case "value ordering" `Quick test_value_order;
    Alcotest.test_case "value roundtrip" `Quick test_value_roundtrip;
    Alcotest.test_case "schema basics" `Quick test_schema_basics;
    Alcotest.test_case "schema errors" `Quick test_schema_errors;
    Alcotest.test_case "tuple operations" `Quick test_tuple;
    Alcotest.test_case "relation set semantics" `Quick test_relation_set_semantics;
    Alcotest.test_case "relation operations" `Quick test_relation_ops;
    Alcotest.test_case "relation arity mismatch" `Quick test_relation_arity_mismatch;
    Alcotest.test_case "database basics" `Quick test_database;
    Alcotest.test_case "database set_relation" `Quick test_database_set_relation;
  ]
