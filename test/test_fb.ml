(* Tests for the Facebook case-study substrate: schema, security views, and
   end-to-end labeling of realistic API queries. *)

module Fb = Fbschema.Fb_schema
module Views = Fbschema.Fb_views
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Sview = Disclosure.Sview
module Policy = Disclosure.Policy
module Monitor = Disclosure.Monitor

let pq = Helpers.pq

let pipeline = Views.pipeline ()

let registry = Pipeline.registry pipeline

let label s = Pipeline.label pipeline (pq s)

let label_view_names s =
  label s
  |> Label.atoms
  |> List.map (fun al ->
         Label.views_of_atom registry al |> List.map (fun v -> v.Sview.name))

(* Positional query construction over the wide User relation is unreadable;
   build queries attribute-wise like the workload generator does. *)
let user_query ?(consts = []) ~head_attrs () =
  let cell attr =
    match List.assoc_opt attr consts with
    | Some v -> Cq.Term.Const v
    | None -> Cq.Term.Var attr
  in
  let atom = Cq.Atom.make "User" (List.map cell Fb.user_attrs) in
  Cq.Query.make ~name:"Q"
    ~head:(List.map (fun a -> Cq.Term.Var a) head_attrs)
    ~body:[ atom ] ()

let test_schema_shape () =
  Helpers.check_int "eight relations" 8 (Relational.Schema.size Fb.schema);
  Helpers.check_int "User has 34 attributes" 34 (Fb.arity "User");
  List.iter
    (fun rel ->
      if rel <> "User" then begin
        let a = Fb.arity rel in
        Helpers.check_bool (rel ^ " arity in 3..10") true (a >= 3 && a <= 10)
      end)
    Fb.relation_names;
  (* Every relation carries uid and is_friend. *)
  List.iter
    (fun rel ->
      ignore (Fb.uid_index rel);
      ignore (Fb.is_friend_index rel))
    Fb.relation_names

let test_view_counts () =
  Helpers.check_int "16 User views" 16 (List.length Views.user_views);
  Helpers.check_int "37 views total" 37 (List.length Views.all);
  List.iter
    (fun rel ->
      if rel <> "User" then
        Helpers.check_int (rel ^ " has 3 views") 3 (List.length (Views.views_for rel)))
    Fb.relation_names

let test_self_birthday () =
  let q = user_query ~consts:[ ("uid", Fb.me) ] ~head_attrs:[ "birthday" ] () in
  let names = List.concat (Pipeline.label pipeline q
    |> Label.atoms
    |> List.map (fun al -> Label.views_of_atom registry al |> List.map (fun v -> v.Sview.name)))
  in
  Alcotest.check Alcotest.(list string) "own birthday needs user_birthday"
    [ "user_birthday" ] names

let test_friend_birthday () =
  let q =
    user_query
      ~consts:[ ("is_friend", Relational.Value.Bool true) ]
      ~head_attrs:[ "uid"; "birthday" ] ()
  in
  let names =
    List.concat
      (Pipeline.label pipeline q |> Label.atoms
      |> List.map (fun al -> Label.views_of_atom registry al |> List.map (fun v -> v.Sview.name)))
  in
  Alcotest.check Alcotest.(list string) "friend birthday needs friends_birthday"
    [ "friends_birthday" ] names

let test_stranger_birthday_is_top () =
  let q = user_query ~head_attrs:[ "uid"; "birthday" ] () in
  Helpers.check_bool "stranger birthday unanswerable" true
    (Label.is_top (Pipeline.label pipeline q))

let test_public_attributes () =
  let q = user_query ~head_attrs:[ "uid"; "name"; "pic" ] () in
  let names =
    List.concat
      (Pipeline.label pipeline q |> Label.atoms
      |> List.map (fun al -> Label.views_of_atom registry al |> List.map (fun v -> v.Sview.name)))
  in
  Alcotest.check Alcotest.(list string) "public profile" [ "user_public" ] names

let test_user_likes_grants_languages () =
  (* The paper's user_likes quirk: languages ride along with media tastes. *)
  let q = user_query ~consts:[ ("uid", Fb.me) ] ~head_attrs:[ "languages" ] () in
  let names =
    List.concat
      (Pipeline.label pipeline q |> Label.atoms
      |> List.map (fun al -> Label.views_of_atom registry al |> List.map (fun v -> v.Sview.name)))
  in
  Alcotest.check Alcotest.(list string) "languages via user_likes" [ "user_likes" ] names

let test_cross_family_projection_is_top () =
  (* Requesting attributes from two different permission families in one atom
     is not answerable from any single-atom view (no key constraints). *)
  let q = user_query ~consts:[ ("uid", Fb.me) ] ~head_attrs:[ "birthday"; "music" ] () in
  Helpers.check_bool "cross-family is top" true (Label.is_top (Pipeline.label pipeline q))

let test_friend_join_query () =
  (* Birthday of friends via an explicit Friend join (workload option ii). *)
  let user_atom =
    let cell attr =
      match attr with
      | "uid" -> Cq.Term.Var "f"
      | "is_friend" -> Cq.Term.Const (Relational.Value.Bool true)
      | "birthday" -> Cq.Term.Var "b"
      | a -> Cq.Term.Var ("e_" ^ a)
    in
    Cq.Atom.make "User" (List.map cell Fb.user_attrs)
  in
  let friend_atom =
    Cq.Atom.make "Friend" [ Cq.Term.Const Fb.me; Cq.Term.Var "f"; Cq.Term.Var "ef" ]
  in
  let q =
    Cq.Query.make ~name:"Q" ~head:[ Cq.Term.Var "f"; Cq.Term.Var "b" ]
      ~body:[ friend_atom; user_atom ] ()
  in
  let l = Pipeline.label pipeline q in
  Helpers.check_bool "answerable" false (Label.is_top l);
  Helpers.check_int "two atoms" 2 (List.length (Label.atoms l))

let test_fb_policy_scenario () =
  (* A principal grants only the friends_* family plus public data. *)
  let granted =
    List.filter
      (fun v ->
        String.length v.Sview.name >= 7 && String.sub v.Sview.name 0 7 = "friends")
      Views.all
    @ [ Option.get (Views.by_name "user_public"); Option.get (Views.by_name "friend_public") ]
  in
  let m = Monitor.create (Policy.stateless registry granted) in
  let friend_q =
    user_query
      ~consts:[ ("is_friend", Relational.Value.Bool true) ]
      ~head_attrs:[ "uid"; "birthday" ] ()
  in
  let self_q = user_query ~consts:[ ("uid", Fb.me) ] ~head_attrs:[ "birthday" ] () in
  Helpers.check_bool "friend query answered" true
    (Monitor.submit m (Pipeline.label pipeline friend_q) = Monitor.Answered);
  Helpers.check_bool "self query refused (no user_birthday)" true
    (Monitor.submit m (Pipeline.label pipeline self_q) |> Monitor.is_refused)

let test_sample_database () =
  let db = Fbschema.Fb_sample.database in
  Helpers.check_int "five users" 5
    (Relational.Relation.cardinal (Relational.Database.relation db "User"));
  (* Evaluate friends_birthday over the sample: alice and bob. *)
  let v = Option.get (Views.by_name "friends_birthday") in
  let answer = Sview.eval db v in
  Helpers.check_int "two friends" 2 (Relational.Relation.cardinal answer)

let test_sample_query_execution () =
  (* End to end: a friend-birthday query evaluates consistently with the
     rewriting over the view it is labeled with. *)
  let db = Fbschema.Fb_sample.database in
  let q =
    user_query
      ~consts:[ ("is_friend", Relational.Value.Bool true) ]
      ~head_attrs:[ "uid"; "birthday" ] ()
  in
  let atoms = Disclosure.Dissect.dissect q in
  match atoms with
  | [ atom ] -> (
    match Disclosure.Rewrite_single.find ~query:atom ~views:Views.all with
    | None -> Alcotest.fail "expected a rewriting"
    | Some (view, rw) ->
      let via_view =
        Disclosure.Rewrite_single.execute ~view_answer:(Sview.eval db view) rw
      in
      let direct = Cq.Eval.eval db q in
      (* Column order may differ between the two paths; compare contents as
         sets of sorted rows is overkill — head order is first-occurrence in
         both, so direct comparison applies. *)
      Alcotest.check Helpers.relation_testable "rewriting faithful" direct via_view)
  | _ -> Alcotest.fail "expected a single atom"

let test_label_names_helper () =
  Helpers.check_bool "helper works" true (label_view_names "Q(x) :- Friend('me', x, f)" <> [])

let suite =
  [
    Alcotest.test_case "schema shape" `Quick test_schema_shape;
    Alcotest.test_case "view counts" `Quick test_view_counts;
    Alcotest.test_case "self birthday" `Quick test_self_birthday;
    Alcotest.test_case "friend birthday" `Quick test_friend_birthday;
    Alcotest.test_case "stranger birthday is top" `Quick test_stranger_birthday_is_top;
    Alcotest.test_case "public attributes" `Quick test_public_attributes;
    Alcotest.test_case "user_likes grants languages" `Quick test_user_likes_grants_languages;
    Alcotest.test_case "cross-family projection" `Quick test_cross_family_projection_is_top;
    Alcotest.test_case "friend join query" `Quick test_friend_join_query;
    Alcotest.test_case "policy scenario" `Quick test_fb_policy_scenario;
    Alcotest.test_case "sample database" `Quick test_sample_database;
    Alcotest.test_case "sample query execution" `Quick test_sample_query_execution;
    Alcotest.test_case "label names helper" `Quick test_label_names_helper;
  ]
