(* QCheck generators for random tagged atoms, conjunctive queries, and
   database instances, used by the property-based tests. *)

module Tagged = Disclosure.Tagged
module Value = Relational.Value
module Gen = QCheck.Gen

(* Two fixed predicates so that same-relation pairs are common. *)
let preds = [ ("R", 3); ("S", 2) ]

let var_names = [| "x"; "y"; "z"; "w" |]

let gen_value = Gen.map (fun b -> Value.Int (if b then 1 else 2)) Gen.bool

(* A well-formed tagged atom: kinds are chosen per variable name first, so a
   variable never occurs with two kinds. *)
let gen_tagged_atom : Tagged.atom Gen.t =
  let open Gen in
  let* pred, arity = oneofl preds in
  let* kinds = array_repeat (Array.length var_names) bool in
  let gen_term =
    frequency
      [
        (2, map (fun v -> Tagged.Const v) gen_value);
        ( 8,
          map
            (fun i ->
              Tagged.Var
                ( var_names.(i),
                  if kinds.(i) then Tagged.Distinguished else Tagged.Existential ))
            (int_bound (Array.length var_names - 1)) );
      ]
  in
  let* args = list_repeat arity gen_term in
  return { Tagged.pred; args }

let arbitrary_tagged_atom =
  QCheck.make ~print:Tagged.atom_to_string gen_tagged_atom

(* A random conjunctive query over R/3 and S/2 with a random head. *)
let gen_query : Cq.Query.t Gen.t =
  let open Gen in
  let* n_atoms = int_range 1 3 in
  let gen_term =
    frequency
      [
        (2, map (fun v -> Cq.Term.Const v) gen_value);
        ( 8,
          map (fun i -> Cq.Term.Var var_names.(i)) (int_bound (Array.length var_names - 1))
        );
      ]
  in
  let gen_atom =
    let* pred, arity = oneofl preds in
    let* args = list_repeat arity gen_term in
    return (Cq.Atom.make pred args)
  in
  let* body = list_repeat n_atoms gen_atom in
  let body_vars = List.concat_map Cq.Atom.vars body in
  let distinct = List.sort_uniq String.compare body_vars in
  let* head_selector = list_repeat (List.length distinct) bool in
  let head =
    List.filteri (fun i _ -> List.nth head_selector i) distinct
    |> List.map (fun v -> Cq.Term.Var v)
  in
  return (Cq.Query.make ~name:"Q" ~head ~body ())

let arbitrary_query = QCheck.make ~print:Cq.Query.to_string gen_query

(* A small random database over R/3 and S/2 with values 0..2. *)
let props_schema =
  Relational.Schema.of_list
    [ { name = "R"; attrs = [ "a"; "b"; "c" ] }; { name = "S"; attrs = [ "d"; "e" ] } ]

let gen_database : Relational.Database.t Gen.t =
  let open Gen in
  let gen_cell = map (fun i -> Value.Int i) (int_bound 2) in
  let gen_rel arity max_rows =
    let* n = int_bound max_rows in
    list_repeat n (map Array.of_list (list_repeat arity gen_cell))
  in
  let* r_rows = gen_rel 3 6 in
  let* s_rows = gen_rel 2 6 in
  let db = Relational.Database.create props_schema in
  let db = List.fold_left (fun db t -> Relational.Database.insert db "R" t) db r_rows in
  let db = List.fold_left (fun db t -> Relational.Database.insert db "S" t) db s_rows in
  return db

let arbitrary_database =
  QCheck.make
    ~print:(fun db -> Format.asprintf "%a" Relational.Database.pp db)
    gen_database

let arbitrary_atom_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)" (Tagged.atom_to_string a) (Tagged.atom_to_string b))
    Gen.(pair gen_tagged_atom gen_tagged_atom)

let arbitrary_atom_triple =
  QCheck.make
    ~print:(fun (a, b, c) ->
      Printf.sprintf "(%s, %s, %s)" (Tagged.atom_to_string a) (Tagged.atom_to_string b)
        (Tagged.atom_to_string c))
    Gen.(triple gen_tagged_atom gen_tagged_atom gen_tagged_atom)

let arbitrary_query_db =
  QCheck.make
    ~print:(fun (q, _) -> Cq.Query.to_string q)
    Gen.(pair gen_query gen_database)

let arbitrary_atom_pair_db =
  QCheck.make
    ~print:(fun ((a, b), _) ->
      Printf.sprintf "(%s, %s)" (Tagged.atom_to_string a) (Tagged.atom_to_string b))
    Gen.(pair (pair gen_tagged_atom gen_tagged_atom) gen_database)

(* Key dependencies for the property schema: the first column of each
   relation is its key. *)
let props_fds =
  [
    Cq.Fd.key props_schema ~rel:"R" ~key_positions:[ 0 ];
    Cq.Fd.key props_schema ~rel:"S" ~key_positions:[ 0 ];
  ]

(* A database satisfying [props_fds]: rows are deduplicated by key. *)
let gen_compliant_database : Relational.Database.t Gen.t =
  let open Gen in
  let enforce_key rel =
    let seen = Hashtbl.create 8 in
    Relational.Relation.fold
      (fun tup acc ->
        let key = Relational.Tuple.get tup 0 in
        if Hashtbl.mem seen key then acc
        else begin
          Hashtbl.add seen key ();
          Relational.Relation.add tup acc
        end)
      rel
      (Relational.Relation.empty (Relational.Relation.arity rel))
  in
  let* db = gen_database in
  let db =
    List.fold_left
      (fun db rel ->
        Relational.Database.set_relation db rel
          (enforce_key (Relational.Database.relation db rel)))
      db [ "R"; "S" ]
  in
  return db

let arbitrary_query_compliant_db =
  QCheck.make
    ~print:(fun (q, _) -> Cq.Query.to_string q)
    Gen.(pair gen_query gen_compliant_database)

let arbitrary_query_pair_compliant_db =
  QCheck.make
    ~print:(fun ((a, b), _) ->
      Printf.sprintf "(%s, %s)" (Cq.Query.to_string a) (Cq.Query.to_string b))
    Gen.(pair (pair gen_query gen_query) gen_compliant_database)

(* --- adversarial queries for the resource-governance tests ------------ *)

(* Worst cases for the homomorphism search underlying minimization and
   labeling: many atoms over the {e same} relation with heavily shared
   variables, so the candidate space explodes combinatorially. *)

let avar i = Cq.Term.Var (Printf.sprintf "a%d" i)

(* S(x0,x1), S(x1,x2), ..., S(x_{n-1},x_n): a long chain join. *)
let gen_chain_query : Cq.Query.t Gen.t =
  let open Gen in
  let* n = int_range 4 10 in
  let body = List.init n (fun i -> Cq.Atom.make "S" [ avar i; avar (i + 1) ]) in
  return (Cq.Query.make ~name:"Q" ~head:[ avar 0; avar n ] ~body ())

(* The same relation atom repeated with arguments drawn from a tiny variable
   pool, so most atom pairs unify and absorption checks abound. *)
let gen_repeated_atoms_query : Cq.Query.t Gen.t =
  let open Gen in
  let* n = int_range 4 9 in
  let* pool = int_range 2 3 in
  let gen_arg = map (fun i -> avar i) (int_bound (pool - 1)) in
  let gen_atom = map (fun args -> Cq.Atom.make "R" args) (list_repeat 3 gen_arg) in
  let* body = list_repeat n gen_atom in
  return (Cq.Query.make ~name:"Q" ~head:[] ~body ())

(* A self-join tower: R(x_i, x_{i+1}, x_{i+1}) stacked into a cycle, the
   classic hard instance for CQ minimization (every atom maps into every
   other under some collapse). *)
let gen_self_join_tower : Cq.Query.t Gen.t =
  let open Gen in
  let* n = int_range 3 7 in
  let body =
    List.init n (fun i ->
        let j = (i + 1) mod n in
        Cq.Atom.make "R" [ avar i; avar j; avar j ])
  in
  return (Cq.Query.make ~name:"Q" ~head:[] ~body ())

let gen_adversarial_query : Cq.Query.t Gen.t =
  Gen.oneof [ gen_chain_query; gen_repeated_atoms_query; gen_self_join_tower ]

let arbitrary_adversarial_query =
  QCheck.make ~print:Cq.Query.to_string gen_adversarial_query
