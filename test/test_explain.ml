(* Tests for decision provenance (Explain + the capture plumbing through
   Service, Shard, Server, the wire protocol, and replication).

   The headline property is differential: provenance capture is pure
   observation. A server asked to explain its decisions produces the SAME
   decision sequence, the SAME journal bytes, and the SAME checkpoint bytes
   as one that is not — including under group commit and under every
   submission-path fault. The remaining groups pin the content contract
   (every refusal-taxonomy variant yields a typed cause chain; an answered
   explanation names its tier, cache level, and mask delta), the wire codec
   round-trip, the cross-process trace stitching, and the offline audit
   ledger's agreement with live stats.

   Its own executable: it arms the global fault hooks, spawns worker
   domains, binds sockets, and runs a replication pull. *)

module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Pipeline = Disclosure.Pipeline
module Guard = Disclosure.Guard
module Faults = Disclosure.Faults
module Mclock = Disclosure.Mclock
module Sview = Disclosure.Sview
module Explain = Disclosure.Explain
module Policyfile = Disclosure.Policyfile
module Metrics = Server.Metrics
module Trace = Obs.Trace
module Json = Obs.Json
module Codec = Net.Codec
module Source = Replicate.Source
module Follower = Replicate.Follower

let pq = Cq.Parser.query_exn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"

let pipeline () = Pipeline.create [ v1; v2; v3 ]

let policy : Policyfile.t =
  {
    Policyfile.views = [ v1; v2; v3 ];
    principals =
      [
        ("crm-app", [ ("meetings", [ "V1"; "V2" ]); ("contacts", [ "V3" ]) ]);
        ("calendar-app", [ ("default", [ "V2" ]) ]);
        ("hr-app", [ ("default", [ "V3" ]) ]);
      ];
  }

let register_all server =
  match Policyfile.resolve policy with
  | Ok resolved ->
    List.iter
      (fun (principal, partitions) -> Server.register server ~principal ~partitions)
      resolved
  | Error e -> Alcotest.failf "resolve: %s" e

let q_slots = pq "Q(x) :- Meetings(x, y)"
let q_meetings = pq "Q(x, y) :- Meetings(x, y)"
let q_contacts = pq "Q(x, y, z) :- Contacts(x, y, z)"
let q_join = pq "Q(x, e) :- Meetings(x, y), Contacts(y, e, p)"

(* A deterministic mixed history: answers, policy refusals, a partition
   kill (crm-app answers contacts, losing the meetings partition, then is
   refused meetings). *)
let history =
  [
    ("calendar-app", q_slots);
    ("crm-app", q_contacts);
    ("hr-app", q_contacts);
    ("calendar-app", q_meetings);
    ("crm-app", q_meetings);
    ("hr-app", q_slots);
    ("calendar-app", q_slots);
    ("crm-app", q_contacts);
  ]

let decision_eq a b =
  match (a, b) with
  | Monitor.Answered, Monitor.Answered -> true
  | Monitor.Refused r1, Monitor.Refused r2 -> Guard.refusal_equal r1 r2
  | _ -> false

let decision_pp ppf = function
  | Monitor.Answered -> Format.fprintf ppf "answered"
  | Monitor.Refused r -> Format.fprintf ppf "refused:%s" (Guard.refusal_to_tag r)

let decision_t = Alcotest.testable decision_pp decision_eq

let domains = 2

let make_server ?limits ?journal ?trace ?(domains = domains)
    ?(mailbox_capacity = 1024) ?(cache_capacity = 0) ?(group_commit = false) () =
  let server =
    Server.create ?limits ?journal ?trace
      ~config:
        { Server.domains; mailbox_capacity; cache_capacity; checkpoint_every = 0;
          segment_bytes = 0; drain = Server.default_config.Server.drain; group_commit;
          resident = None }
      (pipeline ())
  in
  register_all server;
  server

let with_tmp_base f =
  let base = Filename.temp_file "disclosure-explain" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      let rm p = try Sys.remove p with Sys_error _ -> () in
      rm base;
      for i = 0 to 3 do
        let shard = Printf.sprintf "%s.shard%d" base i in
        rm shard;
        rm (shard ^ ".ckpt");
        rm (shard ^ ".ckpt.tmp");
        for n = 1 to 8 do
          rm (Printf.sprintf "%s.%d" shard n)
        done
      done)
    (fun () -> f base)

let read_file path =
  if not (Sys.file_exists path) then ""
  else In_channel.with_open_bin path In_channel.input_all

let with_socket f =
  let path = Filename.temp_file "disclosure-explain" ".sock" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Net.Addr.Unix_socket path))

(* --- differential: provenance capture is pure observation --------------- *)

(* Run [history] once through [submit] and once through [submit_explained]
   on identically configured journaled servers; decisions, journal bytes,
   and checkpoint bytes must be bit-identical. *)
let run_differential ~group_commit () =
  let run ~explained base =
    let server = make_server ~journal:base ~group_commit () in
    Server.start server;
    let decisions =
      List.map
        (fun (principal, q) ->
          if explained then (
            let d, e = Server.await_explained (Server.submit_explained server ~principal q) in
            check_bool "explained ticket carries provenance" true (e <> None);
            d)
          else Server.submit_sync server ~principal q)
        history
    in
    Server.drain server;
    (* Journal bytes before the checkpoint compacts them away... *)
    let journals =
      List.init domains (fun i -> read_file (Printf.sprintf "%s.shard%d" base i))
    in
    (match Server.checkpoint server with
    | Ok () -> ()
    | Error e -> Alcotest.failf "checkpoint: %s" e);
    Server.stop server;
    (* ... and the checkpoint bytes after. *)
    let files =
      List.map2
        (fun i j -> (j, read_file (Printf.sprintf "%s.shard%d.ckpt" base i)))
        (List.init domains Fun.id) journals
    in
    (decisions, files)
  in
  with_tmp_base (fun base_off ->
      with_tmp_base (fun base_on ->
          let d_off, files_off = run ~explained:false base_off in
          let d_on, files_on = run ~explained:true base_on in
          Alcotest.(check (list decision_t)) "same decision sequence" d_off d_on;
          check_bool "decisions were journaled" true
            (List.exists (fun (j, _) -> String.length j > 0) files_off);
          List.iteri
            (fun i ((j_off, c_off), (j_on, c_on)) ->
              check_string (Printf.sprintf "shard %d journal bytes" i) j_off j_on;
              check_string (Printf.sprintf "shard %d checkpoint bytes" i) c_off c_on)
            (List.combine files_off files_on)))

let test_differential_plain () = run_differential ~group_commit:false ()
let test_differential_group_commit () = run_differential ~group_commit:true ()

(* Single-threaded shard harness (worker never started): [Shard.process] on
   the calling domain, so the global fault hooks are safe and deterministic. *)
let shard_harness () =
  let metrics = Metrics.create () in
  let shard =
    Server.Shard.create ~index:0 ~mailbox_capacity:16 ~cache_capacity:0 ~metrics
      (pipeline ())
  in
  Service.register (Server.Shard.service shard) ~principal:"calendar-app"
    ~partitions:[ ("default", [ v2 ]) ];
  shard

let process_plain shard ~principal q =
  let ticket = Server.Ivar.create () in
  Server.Shard.process shard
    (Server.Shard.Query
       { principal; query = q; ticket; enqueued_ns = Mclock.now_ns (); ctx = None });
  Server.Ivar.read ticket

let process_explained shard ~principal q =
  let ticket = Server.Ivar.create () in
  Server.Shard.process shard
    (Server.Shard.Explain
       { principal; query = q; ticket; enqueued_ns = Mclock.now_ns (); ctx = None });
  Server.Ivar.read ticket

(* A fault at every submission-path stage, under both kinds of budget
   exhaustion and an arbitrary crash: the explained path's decision equals
   the plain path's, and every faulted refusal still carries a cause chain. *)
let test_differential_fault_matrix () =
  List.iter
    (fun stage ->
      List.iter
        (fun fault ->
          let d_plain =
            let shard = shard_harness () in
            Faults.with_fault stage fault (fun () ->
                process_plain shard ~principal:"calendar-app" q_slots)
          in
          let d_expl, e =
            let shard = shard_harness () in
            Faults.with_fault stage fault (fun () ->
                process_explained shard ~principal:"calendar-app" q_slots)
          in
          let where =
            Printf.sprintf "%s under fault" (Faults.stage_name stage)
          in
          Alcotest.check decision_t where d_plain d_expl;
          (match d_expl with
          | Monitor.Refused _ -> (
            match e with
            | Some e ->
              check_bool (where ^ ": cause chain non-empty") true (e.Explain.cause <> []);
              check_bool (where ^ ": decision word is a refusal") true
                (String.length e.Explain.decision > 8
                && String.sub e.Explain.decision 0 8 = "refused:")
            | None -> Alcotest.failf "%s: refusal lost its explanation" where)
          | Monitor.Answered -> ()))
        [ Faults.Exhaust_fuel; Faults.Expire_deadline; Faults.Raise "boom" ])
    Faults.submission_stages

(* --- taxonomy: every refusal variant explains itself -------------------- *)

let test_cause_chain_total () =
  List.iter
    (fun (what, reason) ->
      let chain = Explain.cause_of_refusal ~stage:"decide" reason in
      check_bool (what ^ " yields a cause chain") true (chain <> []);
      List.iter
        (fun (c : Explain.cause) ->
          check_bool (what ^ " stage named") true (c.Explain.stage <> "");
          check_bool (what ^ " reason named") true (c.Explain.reason <> ""))
        chain)
    [
      ("policy", Guard.Policy);
      ("fuel", Guard.Resource Guard.Fuel);
      ("deadline", Guard.Resource Guard.Deadline);
      ( "query-too-large",
        Guard.Resource (Guard.Query_too_large { atoms = 5; max_atoms = 2 }) );
      ( "label-too-wide",
        Guard.Resource (Guard.Label_too_wide { width = 9; max_width = 2 }) );
      ("overload", Guard.Overload);
      ("malformed", Guard.Malformed "unparseable");
      ("fault", Guard.Fault "boom");
    ]

(* End-to-end explanations through a real served refusal of each reachable
   variant: policy, fuel, admission cap, width cap, overload. *)
let expect_refused_explained what server ~principal q =
  let d, e = Server.await_explained (Server.submit_explained server ~principal q) in
  match (d, e) with
  | Monitor.Refused _, Some e ->
    check_bool (what ^ ": cause chain present") true (e.Explain.cause <> []);
    check_string (what ^ ": principal recorded") principal e.Explain.principal;
    let rendered = Format.asprintf "%a" Explain.pp e in
    check_bool (what ^ ": pp renders") true (String.length rendered > 0);
    e
  | Monitor.Refused _, None -> Alcotest.failf "%s: refusal lost its explanation" what
  | Monitor.Answered, _ -> Alcotest.failf "%s: expected a refusal" what

let test_refusal_variants_end_to_end () =
  (* Policy. *)
  let server = make_server ~domains:1 () in
  Server.start server;
  let e = expect_refused_explained "policy" server ~principal:"calendar-app" q_meetings in
  check_bool "policy refusal reaches the monitor: partitions reported" true
    (e.Explain.partitions <> []);
  check_bool "policy refusal kills nothing" true (Explain.mask_delta e = 0);
  Server.stop server;
  (* Resource: fuel. *)
  let server = make_server ~domains:1 ~limits:(Guard.limits ~fuel:1 ()) () in
  Server.start server;
  let e = expect_refused_explained "fuel" server ~principal:"crm-app" q_join in
  check_bool "fuel refusal names the resource" true
    (List.exists (fun (c : Explain.cause) -> c.Explain.reason <> "") e.Explain.cause);
  Server.stop server;
  (* Resource: admission cap (query too large). *)
  let server = make_server ~domains:1 ~limits:(Guard.limits ~max_atoms:1 ()) () in
  Server.start server;
  ignore (expect_refused_explained "query-too-large" server ~principal:"crm-app" q_join);
  Server.stop server;
  (* Resource: label width cap. *)
  let server = make_server ~domains:1 ~limits:(Guard.limits ~max_label_width:1 ()) () in
  Server.start server;
  ignore (expect_refused_explained "label-too-wide" server ~principal:"crm-app" q_join);
  Server.stop server;
  (* Overload: a full mailbox on a not-yet-started server sheds the second
     submission with an explanation built on the caller's domain. *)
  let server = make_server ~domains:1 ~mailbox_capacity:1 () in
  ignore (Server.submit server ~principal:"calendar-app" q_slots);
  let d, e = Server.await_explained (Server.submit_explained server ~principal:"calendar-app" q_slots) in
  (match (d, e) with
  | Monitor.Refused Guard.Overload, Some e ->
    check_bool "overload cause chain" true (e.Explain.cause <> [])
  | Monitor.Refused Guard.Overload, None -> Alcotest.fail "overload lost its explanation"
  | _ -> Alcotest.fail "expected a shed Refused Overload");
  Server.stop server

(* --- answered content: tier, cache level, witnesses, mask delta --------- *)

let tiers = [ "memo"; "atom-memo"; "diagram"; "matcher"; "fallback"; "interpreter" ]

let test_answered_content () =
  let server = make_server ~domains:1 () in
  Server.start server;
  let d, e = Server.await_explained (Server.submit_explained server ~principal:"crm-app" q_contacts) in
  (match (d, e) with
  | Monitor.Answered, Some e ->
    check_string "decision word" "answered" e.Explain.decision;
    check_bool "label encoded" true (e.Explain.label <> "-");
    check_bool "label width positive" true (e.Explain.label_width >= 1);
    check_int "one witness row per label atom" e.Explain.label_width
      (List.length e.Explain.atoms);
    check_bool "witnesses name covering views" true
      (List.exists (fun (_, views) -> views <> []) e.Explain.atoms);
    check_bool "a real labeler tier is named" true (List.mem e.Explain.tier tiers);
    check_bool "cache level reported" true (e.Explain.cache_level <> "");
    check_int "both partitions reported" 2 (List.length e.Explain.partitions);
    (* Answering contacts kills crm-app's meetings partition: the mask
       delta is the observable bite of the paper's monitor semantics. *)
    check_bool "the non-covering partition dies" true (Explain.mask_delta e > 0);
    check_bool "no refusal cause on an answer" true (e.Explain.cause = []);
    let rendered = Format.asprintf "%a" Explain.pp e in
    check_bool "pp names the tier" true
      (String.length rendered > 0
      &&
      let re = e.Explain.tier in
      let rec contains i =
        i + String.length re <= String.length rendered
        && (String.sub rendered i (String.length re) = re || contains (i + 1))
      in
      contains 0)
  | _ -> Alcotest.fail "expected an answered decision with provenance");
  (* The meetings partition is now dead: the follow-up refusal's partition
     report says so. *)
  let e = expect_refused_explained "post-kill policy" server ~principal:"crm-app" q_meetings in
  check_bool "partition report shows a dead partition" true
    (List.exists (fun (_, alive, _) -> not alive) e.Explain.partitions);
  Server.stop server

let test_cache_hit_tier () =
  let server = make_server ~domains:1 ~cache_capacity:64 () in
  Server.start server;
  let _ = Server.await_explained (Server.submit_explained server ~principal:"hr-app" q_contacts) in
  let d, e = Server.await_explained (Server.submit_explained server ~principal:"hr-app" q_contacts) in
  (match (d, e) with
  | Monitor.Answered, Some e ->
    check_bool "cache hit served the label" true
      (List.mem e.Explain.cache_level [ "exact"; "normal"; "canonical" ])
  | _ -> Alcotest.fail "expected a cached answer with provenance");
  Server.stop server

(* --- wire: explain over a socket, codec round-trip ---------------------- *)

let test_wire_explain () =
  with_socket (fun addr ->
      let server = make_server () in
      Server.start server;
      let listener = Net.Listener.create ~server addr in
      Fun.protect
        ~finally:(fun () ->
          Net.Listener.stop listener;
          Server.stop server)
        (fun () ->
          Net.Client.with_connection addr (fun c ->
              (* In-process twin for the expected decisions. *)
              let twin = make_server () in
              Server.start twin;
              List.iter
                (fun (principal, q) ->
                  let expected = Server.submit_sync twin ~principal q in
                  match Net.Client.explain c ~principal q with
                  | Ok (d, Some e) ->
                    Alcotest.check decision_t "wire decision = in-process" expected d;
                    (* The codec is an exact inverse: re-encode and decode. *)
                    (match Codec.explain_of_json (Codec.explain_to_json e) with
                    | Ok e' -> check_bool "explain JSON round-trips" true (e = e')
                    | Error err -> Alcotest.failf "explain_of_json: %s" err)
                  | Ok (_, None) -> Alcotest.fail "wire explanation missing"
                  | Error err -> Alcotest.failf "wire error: %s" (Net.Errors.to_string err))
                history;
              Server.stop twin)))

(* --- cross-process trace stitching -------------------------------------- *)

let test_stitched_trace () =
  with_tmp_base (fun jbase ->
      with_tmp_base (fun mbase ->
          (* The temp files themselves would collide with journal recovery:
             remove them so both families start empty. *)
          List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ jbase; mbase ];
          with_socket (fun addr ->
              (* Primary: 1 shard on track 0, the listener (and the
                 replication source) on track 1. *)
              let primary_tr = Trace.create ~tracks:2 ~sample:1 () in
              let server = make_server ~domains:1 ~journal:jbase ~trace:primary_tr () in
              Server.start server;
              let source = Source.create ~trace:(primary_tr, 1) ~server ~journal:jbase () in
              let listener =
                Net.Listener.create ~trace:(primary_tr, 1)
                  ~extend:(Source.handler source) ~server addr
              in
              let client_tr = Trace.create ~tracks:1 ~sample:1 () in
              let standby_tr = Trace.create ~tracks:1 ~sample:1 () in
              Fun.protect
                ~finally:(fun () ->
                  Net.Listener.stop listener;
                  Server.stop server)
                (fun () ->
                  (* One pipelined wire batch under one client span. *)
                  let scope =
                    Trace.query_begin client_tr ~track:0 ~name:"client"
                      ~principal:"crm-app" ()
                  in
                  let ctx = Trace.scope_ids scope in
                  let tid = fst ctx in
                  Net.Client.with_connection addr (fun c ->
                      let results =
                        Net.Client.query_batch ~ctx c
                          [ ("crm-app", q_contacts); ("calendar-app", q_slots) ]
                      in
                      check_int "both pipelined queries decided" 2 (List.length results));
                  Trace.query_end scope ~outcome:"answered";
                  Server.drain server;
                  (* Standby pulls the committed tail; its replicate span
                     carries the primary's serving span id. *)
                  let follower =
                    match
                      Follower.create ~trace:standby_tr ~journal:mbase ~shards:1 policy
                    with
                    | Ok f -> f
                    | Error e -> Alcotest.failf "follower: %s" e
                  in
                  Net.Client.with_connection addr (fun c ->
                      ignore (Follower.poll_once follower c));
                  (* The client's trace id shows up in the client recorder
                     (its own root) and at least twice in the primary's (the
                     listener's net span per pipelined query, the shard's
                     serving span per query). *)
                  let with_tid tr =
                    List.filter (fun (s : Trace.span) -> s.Trace.trace_id = tid)
                      (Trace.spans tr)
                  in
                  check_bool "client root in the client recorder" true
                    (with_tid client_tr <> []);
                  let primary_hits = with_tid primary_tr in
                  check_bool "listener and shard joined the client trace" true
                    (List.length (List.filter (fun (s : Trace.span) -> s.Trace.parent = None) primary_hits) >= 3);
                  let names = List.map (fun (s : Trace.span) -> s.Trace.name) primary_hits in
                  List.iter
                    (fun n ->
                      check_bool ("a " ^ n ^ " span joined the trace") true
                        (List.mem n names))
                    [ "net"; "query" ];
                  (* Cross-process roots carry the wire parent as an
                     attribute (never a dangling local parent id). *)
                  check_bool "wire parent recorded as an attribute" true
                    (List.exists
                       (fun (s : Trace.span) ->
                         List.mem_assoc "parent_span" s.Trace.attrs)
                       primary_hits);
                  (* The standby recorded its pull, attributable to the
                     primary's serving span. *)
                  let standby_spans = Trace.spans standby_tr in
                  check_bool "standby replicate span recorded" true
                    (List.exists
                       (fun (s : Trace.span) -> s.Trace.name = "replicate")
                       standby_spans);
                  check_bool "replicate span names the primary span" true
                    (List.exists
                       (fun (s : Trace.span) ->
                         List.mem_assoc "primary_span" s.Trace.attrs)
                       standby_spans);
                  (* And the three recorders merge into one well-formed
                     Chrome document with all three processes present. *)
                  let merged =
                    Obs.Chrome.export_merged
                      [
                        ("client", client_tr);
                        ("primary", primary_tr);
                        ("standby", standby_tr);
                      ]
                  in
                  match Json.parse merged with
                  | Error e -> Alcotest.failf "merged export invalid: %s" e
                  | Ok doc -> (
                    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
                    | None -> Alcotest.fail "no traceEvents"
                    | Some events ->
                      let total =
                        List.length (Trace.spans client_tr)
                        + List.length (Trace.spans primary_tr)
                        + List.length standby_spans
                      in
                      check_bool "every span exported" true
                        (List.length events >= total))))))

(* --- satellite: group-commit and pipelined-window size histograms ------- *)

let test_size_histograms () =
  (* Group commit: every covering flush lands one batch-size sample. *)
  with_tmp_base (fun base ->
      let server = make_server ~domains:1 ~journal:base ~group_commit:true () in
      Server.start server;
      let tickets =
        List.map (fun (principal, q) -> Server.submit server ~principal q) history
      in
      List.iter (fun t -> ignore (Server.await t)) tickets;
      Server.drain server;
      Server.stop server;
      let h = Metrics.size_histogram (Server.metrics server) Metrics.Group_batch in
      check_bool "group-commit batch sizes observed" true (h.Metrics.count > 0);
      let text = Metrics.to_prometheus (Server.metrics server) in
      check_bool "batch-size histogram exposed to Prometheus" true
        (let needle = "group_commit_batch_size" in
         let rec contains i =
           i + String.length needle <= String.length text
           && (String.sub text i (String.length needle) = needle || contains (i + 1))
         in
         contains 0));
  (* Pipelined window: a batch of wire frames decodes as one (or few)
     connection wakeups, each landing a window-depth sample. *)
  with_socket (fun addr ->
      let server = make_server () in
      Server.start server;
      let listener = Net.Listener.create ~server addr in
      Fun.protect
        ~finally:(fun () ->
          Net.Listener.stop listener;
          Server.stop server)
        (fun () ->
          Net.Client.with_connection addr (fun c ->
              ignore
                (Net.Client.query_batch c
                   (List.map (fun (p, q) -> (p, q)) history)));
          let h =
            Metrics.size_histogram (Server.metrics server) Metrics.Pipeline_window
          in
          check_bool "pipeline window depths observed" true (h.Metrics.count > 0)))

(* --- offline audit ledger agrees with live stats ------------------------ *)

let test_ledger_matches_live () =
  with_tmp_base (fun base ->
      let server = make_server ~domains:1 ~journal:base () in
      Server.start server;
      let expected = Hashtbl.create 8 in
      List.iter
        (fun (principal, q) ->
          let d = Server.submit_sync server ~principal q in
          let a, r = try Hashtbl.find expected principal with Not_found -> (0, 0) in
          Hashtbl.replace expected principal
            (match d with
            | Monitor.Answered -> (a + 1, r)
            | Monitor.Refused _ -> (a, r + 1)))
        history;
      Server.drain server;
      Server.stop server;
      (* The ledger path: a fresh journal-less service replays the journal
         offline, observing each record. *)
      let service =
        match Policyfile.load policy with
        | Ok s -> s
        | Error e -> Alcotest.failf "load: %s" e
      in
      let tally = Hashtbl.create 8 in
      let on_record ~principal ~label:_ ~decision =
        let a, r = try Hashtbl.find tally principal with Not_found -> (0, 0) in
        Hashtbl.replace tally principal
          (if decision = "answered" then (a + 1, r) else (a, r + 1))
      in
      (match Service.recover ~on_record service ~journal:(base ^ ".shard0") with
      | Ok rec_ -> check_int "every decision replayed" (List.length history) rec_.Service.applied
      | Error e -> Alcotest.failf "recover: %s" (Service.recovery_error_to_string e));
      Service.close service;
      Hashtbl.iter
        (fun principal (a, r) ->
          let a', r' = try Hashtbl.find tally principal with Not_found -> (0, 0) in
          check_int (principal ^ " answered") a a';
          check_int (principal ^ " refused") r r')
        expected)

let () =
  Alcotest.run "explain"
    [
      ( "differential",
        [
          Alcotest.test_case "per-decision commits" `Quick test_differential_plain;
          Alcotest.test_case "group commit" `Quick test_differential_group_commit;
          Alcotest.test_case "fault matrix" `Quick test_differential_fault_matrix;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "cause chain total" `Quick test_cause_chain_total;
          Alcotest.test_case "refusal variants end to end" `Quick
            test_refusal_variants_end_to_end;
        ] );
      ( "content",
        [
          Alcotest.test_case "answered provenance" `Quick test_answered_content;
          Alcotest.test_case "cache-hit tier" `Quick test_cache_hit_tier;
        ] );
      ( "wire",
        [
          Alcotest.test_case "explain over a socket" `Quick test_wire_explain;
          Alcotest.test_case "stitched trace" `Quick test_stitched_trace;
        ] );
      ( "observability",
        [ Alcotest.test_case "size histograms" `Quick test_size_histograms ] );
      ( "ledger",
        [ Alcotest.test_case "matches live stats" `Quick test_ledger_matches_live ] );
    ]
