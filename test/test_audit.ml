(* Tests for the labeling auditor and the Facebook case study (Section 7.1,
   Table 2). *)

module Audit = Disclosure.Audit
module Perms = Fbschema.Fb_permissions
module Pipeline = Disclosure.Pipeline
module Sview = Disclosure.Sview

let pq = Helpers.pq

let test_requirement_equal () =
  Helpers.check_bool "one_of order-insensitive" true
    (Audit.requirement_equal (Audit.One_of [ "a"; "b" ]) (Audit.One_of [ "b"; "a" ]));
  Helpers.check_bool "none vs any" false
    (Audit.requirement_equal Audit.None_required Audit.Any_nonempty);
  Helpers.check_bool "empty one_of is none" true
    (Audit.requirement_equal (Audit.One_of []) Audit.None_required);
  Helpers.check_bool "restricted text" false
    (Audit.requirement_equal (Audit.Restricted "a") (Audit.Restricted "b"))

let test_table2_rediscovered () =
  (* The audit must find exactly the six Table 2 inconsistencies, in order. *)
  let discrepancies = Audit.compare_labelings ~left:Perms.fql ~right:Perms.graph in
  Alcotest.check
    Alcotest.(list string)
    "Table 2 subjects"
    [ "pic"; "timezone"; "devices"; "relationship_status"; "quotes"; "profile_url" ]
    (List.map (fun d -> d.Audit.subject) discrepancies)

let test_42_views_audited () =
  Helpers.check_int "42 subjects" 42 (List.length Perms.subjects);
  Helpers.check_int "42 shared" 42
    (List.length (Audit.shared_subjects Perms.fql Perms.graph));
  Helpers.check_int "36 consistent" 36
    (42 - List.length (Audit.compare_labelings ~left:Perms.fql ~right:Perms.graph))

let test_correct_labeling_column () =
  (* The ground truth agrees with the winning API for each Table 2 row. *)
  List.iter
    (fun (subject, winner) ->
      let expected =
        match winner with
        | Perms.Fql_was_right -> List.assoc subject Perms.fql
        | Perms.Graph_was_right -> List.assoc subject Perms.graph
      in
      Helpers.check_bool subject true
        (Audit.requirement_equal expected (Perms.correct_requirement subject)))
    Perms.table2;
  (* And with the documented value on a consistent subject. *)
  Helpers.check_bool "birthday consistent" true
    (Audit.requirement_equal
       (Perms.correct_requirement "birthday")
       (List.assoc "birthday" Perms.graph))

let test_graph_names () =
  Helpers.check_string "pic alias" "picture" (Perms.graph_name "pic");
  Helpers.check_string "profile_url alias" "link" (Perms.graph_name "profile_url");
  Helpers.check_string "identity otherwise" "birthday" (Perms.graph_name "birthday")

let fig1_views =
  [
    Helpers.sview "V1(x, y) :- Meetings(x, y)";
    Helpers.sview "V2(x) :- Meetings(x, y)";
    Helpers.sview "V3(x, y, z) :- Contacts(x, y, z)";
  ]

let fig1_pipeline = Pipeline.create fig1_views

let test_overprivileged () =
  (* The app only ever asks for time slots; requesting V1 and V3 on top of V2
     is overprivileged. *)
  let queries = [ pq "Q(x) :- Meetings(x, y)"; pq "Q() :- Meetings(x, y)" ] in
  let requested = fig1_views in
  let extra = Audit.overprivileged fig1_pipeline ~requested ~queries in
  (* Each view is individually removable: V1 and V2 are interchangeable for
     these queries and V3 is never used at all. *)
  Alcotest.check
    Alcotest.(list string)
    "all three individually unnecessary" [ "V1"; "V2"; "V3" ]
    (List.map (fun v -> v.Sview.name) extra)

let test_overprivileged_none () =
  let queries = [ pq "Q(x, y) :- Meetings(x, y), Contacts(x, w, z)" ] in
  let requested = fig1_views in
  let extra = Audit.overprivileged fig1_pipeline ~requested ~queries in
  (* V1 and V3 are both needed for the join; V2 adds nothing. *)
  Alcotest.check
    Alcotest.(list string)
    "only V2 unnecessary" [ "V2" ]
    (List.map (fun v -> v.Sview.name) extra)

let test_required_views () =
  let queries = [ pq "Q(x) :- Meetings(x, y)"; pq "Q(p) :- Contacts(p, e, r)" ] in
  let required = Audit.required_views fig1_pipeline queries in
  Helpers.check_int "two views suffice" 2 (List.length required);
  let covered =
    Disclosure.Policy.allowed
      (Disclosure.Policy.stateless (Pipeline.registry fig1_pipeline) required)
      (Pipeline.label fig1_pipeline (List.hd queries))
  in
  Helpers.check_bool "required views cover" true covered

let suite =
  [
    Alcotest.test_case "requirement equality" `Quick test_requirement_equal;
    Alcotest.test_case "Table 2 rediscovered" `Quick test_table2_rediscovered;
    Alcotest.test_case "42 views audited" `Quick test_42_views_audited;
    Alcotest.test_case "correct labeling column" `Quick test_correct_labeling_column;
    Alcotest.test_case "Graph API aliases" `Quick test_graph_names;
    Alcotest.test_case "overprivilege detection" `Quick test_overprivileged;
    Alcotest.test_case "overprivilege on joins" `Quick test_overprivileged_none;
    Alcotest.test_case "required views" `Quick test_required_views;
  ]
