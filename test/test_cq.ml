(* Tests for the conjunctive-query substrate: terms, atoms, queries,
   substitutions, parsing and printing. *)

module Term = Cq.Term
module Atom = Cq.Atom
module Query = Cq.Query
module Subst = Cq.Subst
module Parser = Cq.Parser
module Value = Relational.Value

let pq = Helpers.pq

let test_term () =
  Helpers.check_bool "var is var" true (Term.is_var (Term.Var "x"));
  Helpers.check_bool "const not var" false (Term.is_var (Term.Const (Value.Int 1)));
  Helpers.check_bool "var name" true (Term.var_name (Term.Var "x") = Some "x");
  Helpers.check_string "const prints quoted" "'Jim'"
    (Term.to_string (Term.Const (Value.Str "Jim")));
  Helpers.check_string "var prints bare" "x" (Term.to_string (Term.Var "x"))

let test_atom () =
  let a = Parser.atom_exn "R(x, y, 'c', x)" in
  Helpers.check_int "arity" 4 (Atom.arity a);
  Alcotest.check Alcotest.(list string) "vars deduped, ordered" [ "x"; "y" ] (Atom.vars a);
  Helpers.check_int "constants" 1 (List.length (Atom.constants a));
  let renamed = Atom.rename_vars (fun v -> v ^ "1") a in
  Alcotest.check Alcotest.(list string) "renamed" [ "x1"; "y1" ] (Atom.vars renamed)

let test_query_accessors () =
  let q = pq "Q(x, z) :- R(x, y), S(y, z, 'k')" in
  Alcotest.check Alcotest.(list string) "head vars" [ "x"; "z" ] (Query.head_vars q);
  Alcotest.check Alcotest.(list string) "body vars" [ "x"; "y"; "z" ] (Query.body_vars q);
  Alcotest.check Alcotest.(list string) "existential" [ "y" ] (Query.existential_vars q);
  Alcotest.check Alcotest.(list string) "relations" [ "R"; "S" ] (Query.relations q);
  Helpers.check_bool "not boolean" false (Query.is_boolean q);
  Helpers.check_bool "boolean" true (Query.is_boolean (pq "B() :- R(x, y)"));
  Helpers.check_bool "single atom" true (Query.is_single_atom (pq "B() :- R(x, y)"))

let test_query_safety () =
  Alcotest.check_raises "unsafe head var"
    (Query.Unsafe "head variable z does not appear in the body") (fun () ->
      ignore (Query.make ~head:[ Term.Var "z" ] ~body:[ Parser.atom_exn "R(x)" ] ()));
  Alcotest.check_raises "empty body" (Query.Unsafe "query body is empty") (fun () ->
      ignore (Query.make ~head:[] ~body:[] ()))

let test_query_freshen () =
  let q = pq "Q(x) :- R(x, y)" in
  let q' = Query.freshen ~suffix:"_9" q in
  Alcotest.check Alcotest.(list string) "head renamed" [ "x_9" ] (Query.head_vars q');
  Alcotest.check Alcotest.(list string) "body renamed" [ "x_9"; "y_9" ] (Query.body_vars q');
  Helpers.check_bool "still equivalent" true (Cq.Containment.equivalent q q')

let test_query_schema_check () =
  let q = pq "Q(x) :- Meetings(x, y)" in
  Helpers.check_bool "ok" true (Query.check_schema Helpers.fig1_schema q = Ok ());
  let bad_arity = pq "Q(x) :- Meetings(x, y, z)" in
  Helpers.check_bool "arity error" true
    (Result.is_error (Query.check_schema Helpers.fig1_schema bad_arity));
  let unknown = pq "Q(x) :- Nope(x)" in
  Helpers.check_bool "unknown relation" true
    (Result.is_error (Query.check_schema Helpers.fig1_schema unknown))

let test_subst () =
  let s = Subst.of_list [ ("x", Term.Const (Value.Int 1)); ("y", Term.Var "z") ] in
  Alcotest.check Alcotest.(option string) "apply to var" (Some "z")
    (Term.var_name (Subst.apply_term s (Term.Var "y")));
  Helpers.check_bool "unbound unchanged" true
    (Term.equal (Subst.apply_term s (Term.Var "w")) (Term.Var "w"));
  Helpers.check_bool "bind conflict" true (Subst.bind "x" (Term.Var "other") s = None);
  Helpers.check_bool "bind same ok" true
    (Subst.bind "x" (Term.Const (Value.Int 1)) s <> None);
  let a = Parser.atom_exn "R(x, y, w)" in
  Helpers.check_string "apply atom" "R(1, z, w)" (Atom.to_string (Subst.apply_atom s a))

let test_parser_roundtrip () =
  let cases =
    [
      "Q(x) :- Meetings(x, 'Cathy')";
      "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')";
      "B() :- R(x, y)";
      "Q(x, 9) :- R(x, 9, true, -3)";
    ]
  in
  List.iter
    (fun s ->
      let q = pq s in
      Alcotest.check Helpers.query_testable "pp/parse roundtrip" q
        (pq (Query.to_string q)))
    cases

let test_parser_errors () =
  let fails s = Helpers.check_bool s true (Result.is_error (Parser.query s)) in
  fails "q(x) :- R(x)";
  (* lowercase head *)
  fails "Q(x) :- r(x)";
  (* lowercase relation *)
  fails "Q(x) :- R(x";
  (* unbalanced *)
  fails "Q(x) :-";
  (* no body *)
  fails "Q(z) :- R(x)";
  (* unsafe *)
  fails "Q(x) :- R('unterminated)";
  fails "Q(x) :- R(x) trailing"

let test_parser_program () =
  let program = "# the two queries of Figure 1\nQ1(x) :- Meetings(x, 'Cathy')\n\nQ2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')\n" in
  match Parser.queries program with
  | Error e -> Alcotest.fail e
  | Ok qs -> Helpers.check_int "two queries parsed" 2 (List.length qs)

let test_parser_turnstile_variants () =
  Alcotest.check Helpers.query_testable "<- accepted" (pq "Q(x) :- R(x)") (pq "Q(x) <- R(x)")

let suite =
  [
    Alcotest.test_case "terms" `Quick test_term;
    Alcotest.test_case "atoms" `Quick test_atom;
    Alcotest.test_case "query accessors" `Quick test_query_accessors;
    Alcotest.test_case "query safety" `Quick test_query_safety;
    Alcotest.test_case "query freshen" `Quick test_query_freshen;
    Alcotest.test_case "query schema check" `Quick test_query_schema_check;
    Alcotest.test_case "substitutions" `Quick test_subst;
    Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "parser program" `Quick test_parser_program;
    Alcotest.test_case "parser turnstile variants" `Quick test_parser_turnstile_variants;
  ]
