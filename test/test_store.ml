(* Differential suite for the tiered principal store (DESIGN.md §14).

   Self-contained (its own executable: it arms the global fault hooks). The
   contract under test is bit-identity: whatever the eviction schedule, a
   service wrapped in a store must produce the same decisions, the same
   journal bytes, and the same checkpoint bytes as an always-resident
   service over the same history — including under group commit and the
   spill/fault-in fault points. Fail-closed: a spill record that cannot be
   read back refuses the touching query with [Resource (Spill _)] and
   leaves every resident monitor bit-identical. *)

module Guard = Disclosure.Guard
module Faults = Disclosure.Faults
module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Pipeline = Disclosure.Pipeline
module Sview = Disclosure.Sview

let pq = Cq.Parser.query_exn
let sview s = Sview.of_string s

let v1 = sview "V1(x, y) :- Meetings(x, y)"
let v2 = sview "V2(x) :- Meetings(x, y)"
let v3 = sview "V3(x, y, z) :- Contacts(x, y, z)"

let specs =
  [
    ("calendar-app", [ ("slots", [ v2 ]) ]);
    ("crm-app", [ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ]);
    ("audit-app", [ ("all", [ v1; v2; v3 ]) ]);
  ]

let principals = Array.of_list (List.map fst specs)

let queries =
  [|
    pq "Q(x) :- Meetings(x, y)";
    pq "Q(x, y) :- Meetings(x, y)";
    pq "Q(y) :- Meetings(x, y)";
    pq "Q(x, y, z) :- Contacts(x, y, z)";
    pq "Q(x) :- Contacts(x, y, z)";
    pq "Q(x) :- Meetings(x, y), Contacts(y, e, p)";
    pq "Q() :- Unknown(u)";
  |]

let rm f = try Sys.remove f with Sys_error _ -> ()

let cleanup base =
  rm base;
  rm (base ^ ".ckpt");
  rm (base ^ ".ckpt.tmp");
  rm (base ^ ".spill");
  rm (base ^ ".spill.tmp");
  for i = 1 to 64 do
    rm (Printf.sprintf "%s.%d" base i)
  done

let with_base f =
  let base = Filename.temp_file "disclosure-store" ".journal" in
  Sys.remove base;
  Fun.protect ~finally:(fun () -> cleanup base) (fun () -> f base)

let read_all path = In_channel.with_open_bin path In_channel.input_all

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Build a journaled service, optionally tiered with [budget]. Returns the
   service and the store (when tiered). *)
let make ?budget base =
  let service = Service.create ~journal:base (Pipeline.create [ v1; v2; v3 ]) in
  let store =
    Option.map
      (fun b -> Store.create ~budget:b ~spill:(base ^ ".spill") service)
      budget
  in
  List.iter
    (fun (principal, partitions) ->
      match store with
      | Some s -> Store.register s ~principal ~partitions
      | None -> Service.register service ~principal ~partitions)
    specs;
  (service, store)

let teardown service store =
  (match store with Some s -> Store.close s | None -> ());
  Service.close service

(* --- construction ------------------------------------------------------- *)

let test_create_validation () =
  with_base (fun base ->
      let service = Service.create (Pipeline.create [ v1; v2 ]) in
      Alcotest.check_raises "zero principals"
        (Invalid_argument "Store.create: budget must be >= 1 principal")
        (fun () ->
          ignore (Store.create ~budget:(Store.Principals 0) ~spill:(base ^ ".spill") service));
      Alcotest.check_raises "zero bytes"
        (Invalid_argument "Store.create: budget must be >= 1 byte") (fun () ->
          ignore (Store.create ~budget:(Store.Bytes 0) ~spill:(base ^ ".spill") service));
      let store =
        Store.create ~budget:(Store.Principals 1) ~spill:(base ^ ".spill") service
      in
      (* One tier per service: the second wrapper must be rejected. *)
      check_bool "second tier rejected" true
        (match Store.create ~budget:(Store.Principals 1) ~spill:(base ^ ".spill2") service with
        | _ -> false
        | exception Invalid_argument _ -> true);
      rm (base ^ ".spill2");
      Store.close store;
      Service.close service)

(* The spill path is process-private scratch: stale bytes from a previous
   process must not survive Store.create. *)
let test_spill_truncated_at_create () =
  with_base (fun base ->
      Out_channel.with_open_bin (base ^ ".spill") (fun oc ->
          Out_channel.output_string oc "stale garbage from a dead process");
      let service, store = make ~budget:(Store.Principals 1) base in
      let st = Store.stats (Option.get store) in
      check_bool "stale spill bytes gone" true
        (st.Store.stat_spill_bytes < 32);
      teardown service store)

(* --- eviction, fault-in, tiers ------------------------------------------ *)

let test_eviction_and_fault_in () =
  with_base (fun base ->
      let service, store = make ~budget:(Store.Principals 1) base in
      let store = Option.get store in
      (* Dirty crm-app (one answered query narrows its wall), then force it
         out: budget 1 and two other registered principals. *)
      check_bool "crm answered" true
        (Service.submit service ~principal:"crm-app" queries.(3) = Monitor.Answered);
      ignore (Service.submit service ~principal:"calendar-app" queries.(0));
      Store.enforce store;
      check_bool "resident within budget" true (Store.resident store <= 1);
      let st = Store.stats store in
      check_bool "evictions happened" true (st.Store.stat_evictions > 0);
      check_bool "dirty eviction wrote a spill record" true
        (st.Store.stat_spill_writes > 0);
      (* Touching the spilled principal faults it back in with its history:
         the contacts side was chosen, so meetings must still refuse. *)
      check_bool "faulted-in history intact (refuses meetings)" true
        (Service.submit service ~principal:"crm-app" queries.(1) |> Monitor.is_refused);
      check_bool "faulted-in history intact (answers contacts)" true
        (Service.submit service ~principal:"crm-app" queries.(4) = Monitor.Answered);
      check_bool "fault-ins counted" true
        ((Store.stats store).Store.stat_fault_ins > 0);
      teardown service (Some store))

(* Pristine monitors take the fresh tier: zero spill I/O. *)
let test_fresh_tier_zero_io () =
  with_base (fun base ->
      let service, store = make ~budget:(Store.Principals 1) base in
      let store = Option.get store in
      Store.enforce store;
      let st = Store.stats store in
      check_bool "evicted below budget" true (st.Store.stat_resident <= 1);
      check_int "no spill records for pristine monitors" 0 st.Store.stat_spill_writes;
      check_bool "evicted principals are fresh" true (st.Store.stat_fresh >= 2);
      (* A fresh principal faults in as pristine: full lattice available. *)
      check_bool "fresh fault-in answers" true
        (Service.submit service ~principal:"crm-app" queries.(3) = Monitor.Answered);
      teardown service (Some store))

let test_stats_invariant () =
  with_base (fun base ->
      let service, store = make ~budget:(Store.Principals 2) base in
      let store = Option.get store in
      let rng = Random.State.make [| 0xACE |] in
      for _ = 1 to 200 do
        let principal = principals.(Random.State.int rng (Array.length principals)) in
        ignore
          (Service.submit service ~principal
             queries.(Random.State.int rng (Array.length queries)));
        if Random.State.int rng 3 = 0 then Store.enforce store
      done;
      let st = Store.stats store in
      check_int "tiers partition the population"
        (List.length specs)
        (st.Store.stat_resident + st.Store.stat_spilled + st.Store.stat_fresh);
      teardown service (Some store))

(* --- the differential matrix -------------------------------------------- *)

(* One random history: (principal index, action index) pairs; action >=
   Array.length queries means reset. *)
let random_history rng steps =
  List.init steps (fun _ ->
      ( Random.State.int rng (Array.length principals),
        Random.State.int rng (Array.length queries + 1) ))

(* Run [history] through a journaled service — always-resident when [budget]
   is [None] — enforcing eviction every [cadence] steps and checkpointing
   mid-history. Returns (decisions, snapshot, tail bytes, checkpoint bytes). *)
let run_history ?budget ~cadence history base =
  let service, store = make ?budget base in
  let steps = List.length history in
  let decisions = ref [] in
  List.iteri
    (fun i (pi, ai) ->
      let principal = principals.(pi) in
      (if ai >= Array.length queries then Service.reset service ~principal
       else decisions := Service.submit service ~principal queries.(ai) :: !decisions);
      (match store with
      | Some s when (i + 1) mod cadence = 0 -> Store.enforce s
      | _ -> ());
      if i = steps / 2 then begin
        (match Service.checkpoint service with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "checkpoint failed: %s" msg);
        match store with Some s -> Store.compact s | None -> ()
      end)
    history;
  let snap = Service.snapshot service in
  teardown service store;
  (List.rev !decisions, snap, read_all base, read_all (base ^ ".ckpt"))

let test_differential_matrix () =
  let rng = Random.State.make [| 0x7EED |] in
  List.iter
    (fun budget ->
      List.iter
        (fun cadence ->
          for _ = 1 to 10 do
            let history = random_history rng (4 + Random.State.int rng 16) in
            let d0, s0, j0, c0 =
              with_base (fun b -> run_history ~cadence:1 history b)
            in
            let d1, s1, j1, c1 =
              with_base (fun b ->
                  run_history ~budget:(Store.Principals budget) ~cadence history b)
            in
            let name = Printf.sprintf "budget %d cadence %d" budget cadence in
            check_bool (name ^ ": decisions identical") true (d0 = d1);
            check_bool (name ^ ": snapshot identical") true (s0 = s1);
            check_bool (name ^ ": journal bytes identical") true (String.equal j0 j1);
            check_bool (name ^ ": checkpoint bytes identical") true (String.equal c0 c1)
          done)
        [ 1; 3 ])
    [ 1; 2; 8 ]

(* The same differential under group commit: decisions batch between
   [batch_begin]/[batch_end], eviction runs at batch boundaries (and is a
   no-op inside an open batch). *)
let test_group_commit_differential () =
  let rng = Random.State.make [| 0xBA7C4 |] in
  let run ?budget history base =
    let service, store = make ?budget base in
    let decisions = ref [] in
    let batch = ref 0 in
    Service.batch_begin service;
    List.iter
      (fun (pi, ai) ->
        let principal = principals.(pi) in
        (if ai >= Array.length queries then Service.reset service ~principal
         else
           decisions := Service.submit service ~principal queries.(ai) :: !decisions);
        (* Mid-batch enforcement must be a no-op: an aborting batch restores
           pre-batch state through the resident table. *)
        (match store with Some s -> Store.enforce s | None -> ());
        incr batch;
        if !batch mod 4 = 0 then begin
          (match Service.batch_end service with
          | Ok () -> ()
          | Error r -> Alcotest.failf "batch aborted: %s" (Guard.refusal_to_tag r));
          (match store with Some s -> Store.enforce s | None -> ());
          Service.batch_begin service
        end)
      history;
    (match Service.batch_end service with
    | Ok () -> ()
    | Error r -> Alcotest.failf "batch aborted: %s" (Guard.refusal_to_tag r));
    let snap = Service.snapshot service in
    teardown service store;
    (List.rev !decisions, snap, read_all base)
  in
  for _ = 1 to 10 do
    let history = random_history rng (4 + Random.State.int rng 16) in
    let d0, s0, j0 = with_base (fun b -> run history b) in
    let d1, s1, j1 =
      with_base (fun b -> run ~budget:(Store.Principals 1) history b)
    in
    check_bool "group commit: decisions identical" true (d0 = d1);
    check_bool "group commit: snapshot identical" true (s0 = s1);
    check_bool "group commit: journal bytes identical" true (String.equal j0 j1)
  done;
  (* And directly: no eviction happens while a batch is open (registration-
     time enforcement ran before the batch, so compare deltas). *)
  with_base (fun base ->
      let service, store = make ~budget:(Store.Principals 1) base in
      let store = Option.get store in
      Service.batch_begin service;
      ignore (Service.submit service ~principal:"crm-app" queries.(3));
      ignore (Service.submit service ~principal:"calendar-app" queries.(0));
      let ev_in = (Store.stats store).Store.stat_evictions in
      Store.enforce store;
      check_int "no eviction inside an open batch" ev_in
        (Store.stats store).Store.stat_evictions;
      (match Service.batch_end service with
      | Ok () -> ()
      | Error r -> Alcotest.failf "batch aborted: %s" (Guard.refusal_to_tag r));
      Store.enforce store;
      check_bool "eviction resumes at the batch boundary" true
        ((Store.stats store).Store.stat_evictions > 0);
      teardown service (Some store))

(* --- fault injection ----------------------------------------------------- *)

let all_faults = [ Faults.Exhaust_fuel; Faults.Expire_deadline; Faults.Raise "injected" ]

(* A spill-write fault aborts the eviction: the dirty principal stays
   resident, its state untouched, and no query is ever refused — the
   touching query that forced the over-budget state still answers. *)
let test_spill_fault_keeps_resident () =
  List.iter
    (fun fault ->
      with_base (fun base ->
          (* Budget 2: dirty crm-app and calendar-app both fit; the audit-app
             touch below then needs an eviction, and the only candidates are
             dirty — exactly the spill path. *)
          let service, store = make ~budget:(Store.Principals 2) base in
          let store = Option.get store in
          check_bool "setup answered (crm)" true
            (Service.submit service ~principal:"crm-app" queries.(3) = Monitor.Answered);
          check_bool "setup answered (calendar)" true
            (Service.submit service ~principal:"calendar-app" queries.(0)
            = Monitor.Answered);
          let writes0 = (Store.stats store).Store.stat_spill_writes in
          let others snap = List.filter (fun (p, _) -> p <> "audit-app") snap in
          let before = others (Service.snapshot service) in
          let d =
            Faults.with_fault Faults.Spill fault (fun () ->
                Service.submit service ~principal:"audit-app" queries.(0))
          in
          check_bool "the touching query still answers" true (d = Monitor.Answered);
          check_int "no spill record written under the fault" writes0
            (Store.stats store).Store.stat_spill_writes;
          check_bool "dirty principals stayed resident, over budget" true
            (Store.resident store > 2);
          check_bool "their state is untouched" true
            (others (Service.snapshot service) = before);
          (* Disarmed, the next pass spills normally and history survives. *)
          Store.enforce store;
          check_bool "eviction succeeds once disarmed" true
            (Store.resident store <= 2);
          check_bool "spill writes resume once disarmed" true
            ((Store.stats store).Store.stat_spill_writes > writes0);
          check_bool "history intact after the retried spill" true
            (Service.submit service ~principal:"crm-app" queries.(1)
            |> Monitor.is_refused);
          teardown service (Some store)))
    all_faults

(* A fault-in fault refuses the touching query with [Resource (Spill _)],
   leaves every resident monitor bit-identical, and journals the refusal. *)
let test_fault_in_fault_refuses () =
  List.iter
    (fun fault ->
      with_base (fun base ->
          let service, store = make ~budget:(Store.Principals 1) base in
          let store = Option.get store in
          check_bool "setup answered" true
            (Service.submit service ~principal:"crm-app" queries.(3) = Monitor.Answered);
          (* Displace crm-app: the calendar touch faults calendar in, and the
             fault-in's own enforcement evicts the dirty crm monitor. *)
          ignore (Service.submit service ~principal:"calendar-app" queries.(0));
          Store.enforce store;
          check_bool "crm spilled" true
            (Service.resident_monitor service "crm-app" = None);
          let before = Service.snapshot service in
          let d =
            Faults.with_fault Faults.Fault_in fault (fun () ->
                Service.submit service ~principal:"crm-app" queries.(4))
          in
          (match d with
          | Monitor.Refused (Guard.Resource (Guard.Spill _)) -> ()
          | d ->
            Alcotest.failf "expected a spill refusal, got %a" Monitor.pp_decision d);
          check_bool "refusal left every monitor bit-identical" true
            (Service.snapshot service = before);
          (* Disarmed, the same touch faults in and the history is intact. *)
          check_bool "fault-in succeeds once disarmed" true
            (Service.submit service ~principal:"crm-app" queries.(4) = Monitor.Answered);
          check_bool "history intact" true
            (Service.submit service ~principal:"crm-app" queries.(1)
            |> Monitor.is_refused);
          let live = Service.snapshot service in
          teardown service (Some store);
          (* The refusal is durable: the journal replays to the same state. *)
          let fresh, fstore = make ~budget:(Store.Principals 1) (base ^ ".re") in
          (match Service.recover fresh ~journal:base with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
          check_bool "journal (with the spill refusal) replays bit-identically"
            true
            (Service.snapshot fresh = live);
          teardown fresh fstore;
          cleanup (base ^ ".re")))
    all_faults

(* A corrupt spill record on disk is a typed fail-closed refusal; repairing
   the bytes restores service with the history intact. *)
let test_corrupt_spill_fails_closed () =
  with_base (fun base ->
      let service, store = make ~budget:(Store.Principals 1) base in
      let store = Option.get store in
      check_bool "setup answered" true
        (Service.submit service ~principal:"crm-app" queries.(3) = Monitor.Answered);
      ignore (Service.submit service ~principal:"calendar-app" queries.(0));
      Store.enforce store;
      check_bool "crm spilled" true
        (Service.resident_monitor service "crm-app" = None);
      let spill = base ^ ".spill" in
      let good = read_all spill in
      let flip i =
        let b = Bytes.of_string good in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        Out_channel.with_open_bin spill (fun oc -> Out_channel.output_bytes oc b)
      in
      let restore () =
        Out_channel.with_open_bin spill (fun oc -> Out_channel.output_string oc good)
      in
      (* Flip a byte inside the record body (past the header). *)
      flip (String.length good - 8);
      (match Service.submit service ~principal:"crm-app" queries.(4) with
      | Monitor.Refused (Guard.Resource (Guard.Spill _)) -> ()
      | d -> Alcotest.failf "expected a spill refusal, got %a" Monitor.pp_decision d);
      check_bool "still refusing while corrupt" true
        (Service.submit service ~principal:"crm-app" queries.(4) |> Monitor.is_refused);
      restore ();
      check_bool "repaired record faults in" true
        (Service.submit service ~principal:"crm-app" queries.(4) = Monitor.Answered);
      check_bool "history intact after repair" true
        (Service.submit service ~principal:"crm-app" queries.(1) |> Monitor.is_refused);
      teardown service (Some store))

(* --- reset, recovery, compaction ----------------------------------------- *)

let test_reset_spilled_principal () =
  with_base (fun base ->
      let service, store = make ~budget:(Store.Principals 1) base in
      let store = Option.get store in
      check_bool "narrowed" true
        (Service.submit service ~principal:"crm-app" queries.(3) = Monitor.Answered);
      ignore (Service.submit service ~principal:"calendar-app" queries.(0));
      Store.enforce store;
      check_bool "spilled" true (Service.resident_monitor service "crm-app" = None);
      Service.reset service ~principal:"crm-app";
      check_bool "reset restored the full lattice" true
        (Service.submit service ~principal:"crm-app" queries.(1) = Monitor.Answered);
      let live = Service.snapshot service in
      teardown service (Some store);
      let fresh, fstore = make ~budget:(Store.Principals 1) (base ^ ".re") in
      (match Service.recover fresh ~journal:base with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      check_bool "reset-through-spill replays bit-identically" true
        (Service.snapshot fresh = live);
      teardown fresh fstore;
      cleanup (base ^ ".re"))

(* Recovery replays through the tier: the recovering store's spill file is
   reset first (the journal is the authority), then repopulated by the
   replay's own evictions. *)
let test_recover_through_tier () =
  with_base (fun base ->
      let history = random_history (Random.State.make [| 0x5111 |]) 40 in
      let service, store = make base in
      List.iter
        (fun (pi, ai) ->
          let principal = principals.(pi) in
          if ai >= Array.length queries then Service.reset service ~principal
          else ignore (Service.submit service ~principal queries.(ai)))
        history;
      let live = Service.snapshot service in
      teardown service store;
      let fresh, fstore = make ~budget:(Store.Principals 1) (base ^ ".re") in
      let fstore = Option.get fstore in
      (match Service.recover fresh ~journal:base with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e));
      check_bool "recovered through the tier = live" true
        (Service.snapshot fresh = live);
      check_bool "replay stayed within budget" true (Store.resident fstore <= 1);
      teardown fresh (Some fstore);
      cleanup (base ^ ".re"))

let test_compaction () =
  with_base (fun base ->
      let service, store = make ~budget:(Store.Principals 1) base in
      let store = Option.get store in
      (* Spill/fault-in cycles leave dead records behind. *)
      for _ = 1 to 20 do
        ignore (Service.submit service ~principal:"crm-app" queries.(4));
        ignore (Service.submit service ~principal:"calendar-app" queries.(0));
        Store.enforce store
      done;
      let before = (Store.stats store).Store.stat_spill_bytes in
      Store.compact ~force:true store;
      let after = (Store.stats store).Store.stat_spill_bytes in
      check_bool "compaction shrank the spill file" true (after < before);
      (* Offsets were repointed: spilled principals still fault in. *)
      check_bool "post-compaction fault-in" true
        (Service.submit service ~principal:"crm-app" queries.(4) = Monitor.Answered);
      check_bool "history intact" true
        (Service.submit service ~principal:"crm-app" queries.(1) |> Monitor.is_refused);
      teardown service (Some store))

let test_bytes_budget () =
  with_base (fun base ->
      let service, store = make ~budget:(Store.Bytes 1) base in
      let store = Option.get store in
      (* 1 byte resolves to the 1-principal floor. *)
      ignore (Service.submit service ~principal:"crm-app" queries.(3));
      Store.enforce store;
      check_bool "byte budget bounds the resident set" true
        (Store.resident store <= 1);
      check_bool "decisions unaffected" true
        (Service.submit service ~principal:"crm-app" queries.(4) = Monitor.Answered);
      teardown service (Some store))

(* --- qcheck: live ≡ tiered at random budgets and cadences ---------------- *)

let prop_tier_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"tiered ≡ always-resident (decisions, journal, checkpoint, snapshot)"
       QCheck.(
         triple
           (list_of_size Gen.(2 -- 16)
              (pair (int_bound (Array.length principals - 1))
                 (int_bound (Array.length queries))))
           (int_range 1 3) (int_range 1 4))
       (fun (history, budget, cadence) ->
         let d0, s0, j0, c0 = with_base (fun b -> run_history ~cadence:1 history b) in
         let d1, s1, j1, c1 =
           with_base (fun b ->
               run_history ~budget:(Store.Principals budget) ~cadence history b)
         in
         d0 = d1 && s0 = s1 && String.equal j0 j1 && String.equal c0 c1))

let () =
  Alcotest.run "disclosure-store"
    [
      ( "store",
        [
          Alcotest.test_case "budget validation and single tier" `Quick
            test_create_validation;
          Alcotest.test_case "spill file truncated at create" `Quick
            test_spill_truncated_at_create;
          Alcotest.test_case "eviction, spill, fault-in" `Quick
            test_eviction_and_fault_in;
          Alcotest.test_case "fresh tier: pristine eviction is zero-I/O" `Quick
            test_fresh_tier_zero_io;
          Alcotest.test_case "tiers partition the population" `Quick
            test_stats_invariant;
          Alcotest.test_case "differential matrix (budgets × cadences)" `Quick
            test_differential_matrix;
          Alcotest.test_case "differential under group commit" `Quick
            test_group_commit_differential;
          Alcotest.test_case "spill fault keeps the principal resident" `Quick
            test_spill_fault_keeps_resident;
          Alcotest.test_case "fault-in fault refuses fail-closed" `Quick
            test_fault_in_fault_refuses;
          Alcotest.test_case "corrupt spill record fails closed" `Quick
            test_corrupt_spill_fails_closed;
          Alcotest.test_case "reset reaches spilled principals" `Quick
            test_reset_spilled_principal;
          Alcotest.test_case "recovery replays through the tier" `Quick
            test_recover_through_tier;
          Alcotest.test_case "spill compaction repoints live records" `Quick
            test_compaction;
          Alcotest.test_case "byte budget resolves to a principal count" `Quick
            test_bytes_budget;
          prop_tier_differential;
        ] );
    ]
