(* Tests for the deployment configuration format (Policyfile). *)

module Policyfile = Disclosure.Policyfile
module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Sview = Disclosure.Sview

let pq = Helpers.pq

let config_text =
  "# Alice's deployment\n\
   view V1(x, y) :- Meetings(x, y)\n\
   view V2(x) :- Meetings(x, y)\n\
   view V3(x, y, z) :- Contacts(x, y, z)\n\
   \n\
   principal calendar-app\n\
   partition default: V2\n\
   \n\
   principal crm-app\n\
   partition meetings: V1, V2\n\
   partition contacts: V3\n"

let parse_ok text =
  match Policyfile.parse text with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_parse () =
  let t = parse_ok config_text in
  Helpers.check_int "three views" 3 (List.length t.Policyfile.views);
  Helpers.check_int "two principals" 2 (List.length t.Policyfile.principals);
  let _, crm = List.nth t.Policyfile.principals 1 in
  Helpers.check_int "crm partitions" 2 (List.length crm);
  Alcotest.check
    Alcotest.(list string)
    "meetings partition views" [ "V1"; "V2" ]
    (snd (List.hd crm))

let test_load_and_enforce () =
  let t = parse_ok config_text in
  match Policyfile.load t with
  | Error e -> Alcotest.fail e
  | Ok service ->
    Alcotest.check
      Alcotest.(list string)
      "principals" [ "calendar-app"; "crm-app" ] (Service.principals service);
    Helpers.check_bool "calendar slots ok" true
      (Service.submit service ~principal:"calendar-app" (pq "Q(x) :- Meetings(x, y)")
      = Monitor.Answered);
    Helpers.check_bool "calendar full table refused" true
      (Service.submit service ~principal:"calendar-app" (pq "Q(x, y) :- Meetings(x, y)")
      |> Monitor.is_refused);
    Helpers.check_bool "crm wall" true
      (Service.submit service ~principal:"crm-app" (pq "Q(x, y, z) :- Contacts(x, y, z)")
      = Monitor.Answered);
    Alcotest.check
      Alcotest.(list string)
      "crm narrowed" [ "contacts" ]
      (Service.alive service ~principal:"crm-app")

let test_roundtrip () =
  let t = parse_ok config_text in
  let t' = parse_ok (Policyfile.to_string t) in
  Helpers.check_bool "views preserved" true
    (List.for_all2 Sview.equal t.Policyfile.views t'.Policyfile.views);
  Helpers.check_bool "principals preserved" true
    (t.Policyfile.principals = t'.Policyfile.principals)

let test_parse_errors () =
  let fails text = Helpers.check_bool text true (Result.is_error (Policyfile.parse text)) in
  fails "partition default: V1\n";
  (* partition before principal *)
  fails "view broken syntax\n";
  fails "view V(x) :- R(x), S(x)\n";
  (* joins are not single-atom views *)
  fails "nonsense directive\n";
  fails "principal p\npartition : V1\n";
  fails "principal p\npartition d:\n"

let test_load_errors () =
  let unknown = parse_ok "view V1(x) :- R(x, y)\nprincipal p\npartition d: V9\n" in
  Helpers.check_bool "unknown view" true (Result.is_error (Policyfile.load unknown));
  let no_parts = parse_ok "view V1(x) :- R(x, y)\nprincipal p\n" in
  Helpers.check_bool "no partitions" true (Result.is_error (Policyfile.load no_parts));
  let dup =
    parse_ok
      "view V1(x) :- R(x, y)\nprincipal p\npartition d: V1\nprincipal p\npartition d: V1\n"
  in
  Helpers.check_bool "duplicate principal" true (Result.is_error (Policyfile.load dup))

let test_error_line_numbers () =
  (match Policyfile.parse "view V1(x) :- R(x, y)\n\nbroken\n" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg ->
    Helpers.check_bool "mentions line 3" true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 3"));
  match Policyfile.parse ~path:"deploy.conf" "view V1(x) :- R(x, y)\n\nbroken\n" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg ->
    Helpers.check_bool "mentions file and line" true
      (String.length msg >= 13 && String.sub msg 0 13 = "deploy.conf:3")

(* Error-path round trip: a file on disk fails with its path in front, at
   every kind of parse error the format can produce. *)
let test_error_paths_from_file () =
  let bad_texts =
    [
      "partition default: V1\n";
      "view broken syntax\n";
      "principal p\npartition : V1\n";
      "nonsense directive\n";
    ]
  in
  List.iter
    (fun text ->
      let path = Filename.temp_file "disclosure-policy" ".conf" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Out_channel.with_open_text path (fun oc -> output_string oc text);
          match Policyfile.parse_file path with
          | Ok _ -> Alcotest.failf "expected error for %S" text
          | Error msg ->
            Helpers.check_bool ("error names the file for " ^ String.escaped text) true
              (String.length msg > String.length path
              && String.sub msg 0 (String.length path) = path)))
    bad_texts;
  match Policyfile.parse_file "/nonexistent/policy.conf" with
  | Ok _ -> Alcotest.fail "missing file must fail"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "load and enforce" `Quick test_load_and_enforce;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "error paths from files" `Quick test_error_paths_from_file;
  ]
