(* Tests for the single-atom equivalent-rewriting decision procedure — the ⪯
   check of Section 5.1 — including semantic validation: every witness
   rewriting, executed over the materialized view, must return exactly the
   direct answer of the query. *)

module RS = Disclosure.Rewrite_single
module Sview = Disclosure.Sview
module Tagged = Disclosure.Tagged
module Relation = Relational.Relation

let tatom = Helpers.tatom

let leq = RS.leq_atom

let test_projection_chain () =
  (* Figure 3: V5 ⪯ V2 ⪯ V1, V5 ⪯ V4 ⪯ V1, V2 and V4 incomparable. *)
  let open Helpers in
  Helpers.check_bool "v5<=v2" true (leq v5 v2);
  Helpers.check_bool "v5<=v4" true (leq v5 v4);
  Helpers.check_bool "v2<=v1" true (leq v2 v1);
  Helpers.check_bool "v4<=v1" true (leq v4 v1);
  Helpers.check_bool "v5<=v1" true (leq v5 v1);
  Helpers.check_bool "v1!<=v2" false (leq v1 v2);
  Helpers.check_bool "v2!<=v4" false (leq v2 v4);
  Helpers.check_bool "v4!<=v2" false (leq v4 v2);
  Helpers.check_bool "reflexive" true (leq v1 v1)

let test_fig4_projections () =
  (* Every smaller projection of Contacts is below every larger one that
     contains its attributes. *)
  let open Helpers in
  Helpers.check_bool "v9<=v6" true (leq v9 v6);
  Helpers.check_bool "v9<=v7" true (leq v9 v7);
  Helpers.check_bool "v9!<=v8" false (leq v9 v8);
  Helpers.check_bool "v10<=v6" true (leq v10 v6);
  Helpers.check_bool "v10<=v8" true (leq v10 v8);
  Helpers.check_bool "v11<=v7" true (leq v11 v7);
  Helpers.check_bool "v11<=v8" true (leq v11 v8);
  Helpers.check_bool "v12 below everything" true
    (List.for_all (leq v12) [ v3; v6; v7; v8; v9; v10; v11 ]);
  Helpers.check_bool "v6!<=v7" false (leq v6 v7);
  Helpers.check_bool "everything below v3" true
    (List.for_all (fun v -> leq v v3) fig4_universe)

let test_different_relations_incomparable () =
  Helpers.check_bool "cross relation" false (leq Helpers.v2 Helpers.v9)

let test_constants () =
  let self = tatom "V(b) :- U('me', b)" in
  let anyone = tatom "W(u, b) :- U(u, b)" in
  let friend_only = tatom "F(b) :- U('you', b)" in
  Helpers.check_bool "constant query from general view" true (leq self anyone);
  Helpers.check_bool "general not from constant view" false (leq anyone self);
  Helpers.check_bool "different constants" false (leq self friend_only);
  Helpers.check_bool "same constant" true (leq self (tatom "W(b) :- U('me', b)"))

let test_constant_vs_existential () =
  (* Example 5.1 intuition: a boolean membership test is not answerable from a
     mere nonemptiness view, nor vice versa. *)
  let membership = tatom "V13() :- Meetings(9, 'Jim')" in
  let nonempty = tatom "V14() :- Meetings(x, y)" in
  Helpers.check_bool "membership not from nonempty" false (leq membership nonempty);
  Helpers.check_bool "nonempty not from membership" false (leq nonempty membership);
  Helpers.check_bool "nonempty from projection" true (leq nonempty Helpers.v2)

let test_equality_patterns () =
  let diag_bool = tatom "V() :- M(x, x)" in
  let diag_view = tatom "W(x) :- M(x, x)" in
  let full = tatom "U(x, y) :- M(x, y)" in
  let nonempty = tatom "N() :- M(x, y)" in
  Helpers.check_bool "diagonal boolean from diagonal view" true (leq diag_bool diag_view);
  Helpers.check_bool "diagonal boolean from full view" true (leq diag_bool full);
  Helpers.check_bool "diagonal boolean not from nonempty" false (leq diag_bool nonempty);
  Helpers.check_bool "nonempty not from diagonal view" false (leq nonempty diag_view);
  Helpers.check_bool "diagonal view from full" true (leq diag_view full)

let test_repeated_distinguished () =
  let q = tatom "Q(x) :- R(x, x, y)" in
  let w_exact = tatom "W(a) :- R(a, a, b)" in
  let w_full = tatom "W(a, b) :- R(a, b, c)" in
  Helpers.check_bool "matching diagonal view" true (leq q w_exact);
  Helpers.check_bool "from full projection (filter equality)" true (leq q w_full)

let test_mixed_existential_coverage () =
  (* A query existential class covered partly by view distinguished and partly
     by view existential variables cannot be rewritten. *)
  let q = tatom "Q() :- R(x, x)" in
  let w = tatom "W(a) :- R(a, b)" in
  Helpers.check_bool "mixed coverage fails" false (leq q w)

let test_set_leq_decomposability () =
  let open Helpers in
  Helpers.check_bool "{v5} <= {v2, v4}" true (RS.leq [ v5 ] [ v2; v4 ]);
  Helpers.check_bool "{v2, v4} <= {v1}" true (RS.leq [ v2; v4 ] [ v1 ]);
  Helpers.check_bool "{v1} !<= {v2, v4}" false (RS.leq [ v1 ] [ v2; v4 ]);
  Helpers.check_bool "equiv reflexive" true (RS.equiv [ v1; v2 ] [ v2; v1 ])

let test_find_picks_first () =
  let views =
    [ Helpers.sview "V2(x) :- Meetings(x, y)"; Helpers.sview "V1(x, y) :- Meetings(x, y)" ]
  in
  match RS.find ~query:Helpers.v5 ~views with
  | Some (v, _) -> Helpers.check_string "first sufficient view" "V2" v.Sview.name
  | None -> Alcotest.fail "expected a rewriting"

(* Semantic validation: execute the witness over the materialized view. *)
let check_witness_semantics ~query_str ~view_str =
  let query = tatom query_str in
  let view = Helpers.sview view_str in
  match RS.check ~query ~view:view.Sview.atom with
  | None -> Alcotest.failf "expected %s ⪯ %s" query_str view_str
  | Some rw ->
    let view_answer = Sview.eval Helpers.fig1_db view in
    let via_view = RS.execute ~view_answer rw in
    let direct = Cq.Eval.eval Helpers.fig1_db (Tagged.atom_to_query query) in
    Alcotest.check Helpers.relation_testable
      (Printf.sprintf "%s via %s" query_str view_str)
      direct via_view

let test_witness_execution () =
  check_witness_semantics ~query_str:"Q(x) :- Meetings(x, y)"
    ~view_str:"V1(x, y) :- Meetings(x, y)";
  check_witness_semantics ~query_str:"Q() :- Meetings(x, y)"
    ~view_str:"V2(x) :- Meetings(x, y)";
  check_witness_semantics ~query_str:"Q(x) :- Meetings(x, 'Cathy')"
    ~view_str:"V1(x, y) :- Meetings(x, y)";
  check_witness_semantics ~query_str:"Q(p, e) :- Contacts(p, e, z)"
    ~view_str:"V3(a, b, c) :- Contacts(a, b, c)";
  check_witness_semantics ~query_str:"Q() :- Contacts(x, y, 'Intern')"
    ~view_str:"V8(y, z) :- Contacts(x, y, z)"

let test_expand_iso () =
  (* The expansion of a witness is iso-equivalent to the query. *)
  let cases =
    [
      ("Q(x) :- Meetings(x, y)", "V1(a, b) :- Meetings(a, b)");
      ("Q() :- Meetings(x, y)", "V2(a) :- Meetings(a, b)");
      ("Q(x) :- Meetings(x, 'Cathy')", "V1(a, b) :- Meetings(a, b)");
      ("Q(x) :- R(x, x, y)", "W(a, b) :- R(a, b, c)");
    ]
  in
  List.iter
    (fun (q, v) ->
      let query = tatom q and view = (Helpers.sview v).Sview.atom in
      match RS.check ~query ~view with
      | None -> Alcotest.failf "expected %s ⪯ %s" q v
      | Some rw ->
        Alcotest.check Helpers.tagged_iso_testable
          (Printf.sprintf "expand(%s over %s)" q v)
          query
          (RS.expand ~view rw))
    cases

let suite =
  [
    Alcotest.test_case "Figure 3 projection chain" `Quick test_projection_chain;
    Alcotest.test_case "Figure 4 projections" `Quick test_fig4_projections;
    Alcotest.test_case "different relations" `Quick test_different_relations_incomparable;
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "constant vs existential" `Quick test_constant_vs_existential;
    Alcotest.test_case "equality patterns" `Quick test_equality_patterns;
    Alcotest.test_case "repeated distinguished" `Quick test_repeated_distinguished;
    Alcotest.test_case "mixed existential coverage" `Quick test_mixed_existential_coverage;
    Alcotest.test_case "set comparison" `Quick test_set_leq_decomposability;
    Alcotest.test_case "find first view" `Quick test_find_picks_first;
    Alcotest.test_case "witness execution semantics" `Quick test_witness_execution;
    Alcotest.test_case "expansion iso-equivalent" `Quick test_expand_iso;
  ]
