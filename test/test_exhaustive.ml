(* Exhaustive verification over the complete space of binary tagged atoms.

   Random testing samples; here we enumerate *every* well-formed tagged atom
   of arity 2 over one relation, with terms drawn from two variables (each
   distinguished or existential) and one constant, and verify the core
   decision procedures on all pairs and triples:

   - the positionwise ⪯ procedure agrees with the brute-force rewriting
     enumerator on every pair;
   - ⪯ is reflexive and transitive everywhere;
   - mutual ⪯ coincides with iso-equivalence everywhere;
   - GLB is a lower bound and the *greatest* lower bound with respect to the
     whole enumerated domain, commutative, and associative as a set GLB.

   Because the enumeration is closed under GenMGU (unification of domain
   atoms only produces terms expressible in the domain up to renaming), these
   checks are genuinely exhaustive for this fragment. *)

module Tagged = Disclosure.Tagged
module RS = Disclosure.Rewrite_single
module Glb = Disclosure.Glb

let domain : Tagged.atom list =
  let term_options =
    [
      Tagged.Const (Relational.Value.Int 1);
      Tagged.Var ("a", Tagged.Distinguished);
      Tagged.Var ("a", Tagged.Existential);
      Tagged.Var ("b", Tagged.Distinguished);
      Tagged.Var ("b", Tagged.Existential);
    ]
  in
  let atoms =
    List.concat_map
      (fun t1 ->
        List.map (fun t2 -> { Tagged.pred = "R"; args = [ t1; t2 ] }) term_options)
      term_options
  in
  let well_formed = List.filter Tagged.well_formed atoms in
  (* One representative per iso class. *)
  Glb.dedup well_formed

let test_domain_size () =
  (* 25 raw combinations, minus the ill-formed (a_d,a_e)-style pairs, modulo
     renaming: the exact count documents the enumeration. *)
  Helpers.check_int "well-formed iso classes" 11 (List.length domain)

let test_pairwise_brute_force () =
  List.iter
    (fun q ->
      List.iter
        (fun v ->
          Helpers.check_bool
            (Printf.sprintf "%s ⪯ %s" (Tagged.atom_to_string q) (Tagged.atom_to_string v))
            (Brute_force.rewritable ~query:q ~view:v)
            (RS.leq_atom q v))
        domain)
    domain

let test_preorder_exhaustive () =
  List.iter (fun a -> Helpers.check_bool "reflexive" true (RS.leq_atom a a)) domain;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if RS.leq_atom a b && RS.leq_atom b c then
                Helpers.check_bool "transitive" true (RS.leq_atom a c))
            domain)
        domain)
    domain

let test_mutual_leq_is_iso_exhaustive () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Helpers.check_bool "≡ coincides with iso" (Tagged.iso_equivalent a b)
            (RS.leq_atom a b && RS.leq_atom b a))
        domain)
    domain

let test_glb_exhaustive () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let g = Glb.singleton a b in
          (match g with
          | Some g ->
            Helpers.check_bool "lower bound" true (RS.leq_atom g a && RS.leq_atom g b)
          | None -> ());
          (* Greatest with respect to the whole domain. *)
          List.iter
            (fun x ->
              if RS.leq_atom x a && RS.leq_atom x b then
                match g with
                | None ->
                  Alcotest.failf "GLB(%s, %s) = ⊥ but %s is a common lower bound"
                    (Tagged.atom_to_string a) (Tagged.atom_to_string b)
                    (Tagged.atom_to_string x)
                | Some g -> Helpers.check_bool "greatest" true (RS.leq_atom x g))
            domain;
          (* Commutativity. *)
          match g, Glb.singleton b a with
          | Some g1, Some g2 ->
            Helpers.check_bool "commutative" true (Tagged.iso_equivalent g1 g2)
          | None, None -> ()
          | _ -> Alcotest.fail "commutativity broken")
        domain)
    domain

let test_glb_associative_exhaustive () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              let l = Glb.of_sets (Glb.of_sets [ a ] [ b ]) [ c ] in
              let r = Glb.of_sets [ a ] (Glb.of_sets [ b ] [ c ]) in
              Helpers.check_bool "associative" true ((l = [] && r = []) || RS.equiv l r))
            domain)
        domain)
    domain

let test_domain_closed_under_glb () =
  (* Every non-⊥ GLB of domain atoms is iso-equivalent to a domain atom. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match Glb.singleton a b with
          | None -> ()
          | Some g ->
            Helpers.check_bool "closed" true
              (List.exists (Tagged.iso_equivalent g) domain))
        domain)
    domain

let suite =
  [
    Alcotest.test_case "domain size" `Quick test_domain_size;
    Alcotest.test_case "⪯ = brute force (all pairs)" `Quick test_pairwise_brute_force;
    Alcotest.test_case "preorder laws (all triples)" `Quick test_preorder_exhaustive;
    Alcotest.test_case "≡ = iso (all pairs)" `Quick test_mutual_leq_is_iso_exhaustive;
    Alcotest.test_case "GLB laws (all pairs, greatest over domain)" `Quick test_glb_exhaustive;
    Alcotest.test_case "GLB associativity (all triples)" `Quick test_glb_associative_exhaustive;
    Alcotest.test_case "domain closed under GLB" `Quick test_domain_closed_under_glb;
  ]
