(* Edge-case coverage for corners not naturally reached by the main suites. *)

module Tagged = Disclosure.Tagged
module Genmgu = Disclosure.Genmgu
module Registry = Disclosure.Registry
module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label
module Policy = Disclosure.Policy
module Monitor = Disclosure.Monitor
module Rng = Workload.Rng
module Querygen = Workload.Querygen

let pq = Helpers.pq

let test_genmgu_arity_mismatch () =
  let a = { Tagged.pred = "R"; args = [ Tagged.Var ("x", Tagged.Distinguished) ] } in
  let b =
    {
      Tagged.pred = "R";
      args = [ Tagged.Var ("x", Tagged.Distinguished); Tagged.Var ("y", Tagged.Existential) ];
    }
  in
  Helpers.check_bool "arity mismatch is bottom" true (Genmgu.unify a b = None)

let test_genmgu_shared_names () =
  (* The two atoms' variable scopes are independent even with equal names. *)
  let a = Helpers.tatom "A(x) :- R(x, y)" in
  let b = Helpers.tatom "B(y) :- R(x, y)" in
  match Genmgu.unify a b with
  | None -> Alcotest.fail "expected a GLB"
  | Some g ->
    (* GLB of first- and second-column projections of R is the boolean. *)
    Helpers.check_bool "boolean result" true
      (Tagged.iso_equivalent g (Helpers.tatom "G() :- R(x, y)"))

let test_tagged_multiatom_to_query () =
  let atoms = Tagged.of_query (pq "Q(x) :- R(x, y), S(y, z)") in
  let q = Tagged.to_query atoms in
  Helpers.check_bool "roundtrip equivalence" true
    (Cq.Containment.equivalent q (pq "Q(x) :- R(x, y), S(y, z)"))

let test_registry_mask_errors () =
  let p = Pipeline.create [ Helpers.sview "V1(x) :- R(x, y)" ] in
  let stranger = Helpers.sview "V9(x) :- R(x, y)" in
  Helpers.check_bool "unregistered view" true
    (try
       ignore (Registry.mask_of_views (Pipeline.registry p) [ stranger ]);
       false
     with Invalid_argument _ -> true)

let test_registry_bit_uniqueness () =
  let r = Pipeline.registry (Fbschema.Fb_views.pipeline ()) in
  List.iter
    (fun rel ->
      let entries = Registry.entries_for r rel in
      let bits = Array.to_list (Array.map (fun (e : Registry.entry) -> e.bit) entries) in
      Helpers.check_bool (rel ^ " bits distinct") true
        (List.length bits = List.length (List.sort_uniq Int.compare bits)))
    Fbschema.Fb_schema.relation_names

let test_label_same_relation_tops () =
  (* Two ⊤ atom labels compare equal. *)
  Helpers.check_bool "top below top" true (Label.atom_leq Label.top_atom Label.top_atom)

let test_policy_partition_views () =
  let p = Pipeline.create [ Helpers.sview "V1(x) :- R(x, y)"; Helpers.sview "V2(y) :- S(y)" ] in
  let policy =
    Policy.make (Pipeline.registry p)
      [ ("both", [ Helpers.sview "V1(x) :- R(x, y)"; Helpers.sview "V2(y) :- S(y)" ]) ]
  in
  let part = (Policy.partitions policy).(0) in
  Helpers.check_int "two relations granted" 2 (List.length (Policy.partition_views policy part))

let test_monitor_alive_mask () =
  let p = Pipeline.create [ Helpers.sview "V1(x, y) :- Meetings(x, y)" ] in
  let policy = Policy.stateless (Pipeline.registry p) (Pipeline.views p) in
  let m = Monitor.create policy in
  Helpers.check_int "single-bit mask" 1 (Monitor.alive_mask m)

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Helpers.check_bool "distinct streams" true (xs <> ys)

let test_querygen_friends_constant () =
  (* A Friends-targeted query constrains is_friend = true in its main atom. *)
  let gen = Querygen.create ~seed:5 () in
  let q = Querygen.generate_targeted gen Querygen.Friends in
  let has_true_const =
    List.exists
      (fun (a : Cq.Atom.t) ->
        a.pred <> "Friend"
        && List.exists
             (fun t -> Cq.Term.equal t (Cq.Term.Const (Relational.Value.Bool true)))
             a.args)
      q.Cq.Query.body
  in
  Helpers.check_bool "is_friend constant present" true has_true_const

let test_eval_substitutions_exposed () =
  let q = pq "Q(x) :- Meetings(x, y)" in
  Helpers.check_int "three satisfying assignments" 3
    (List.length (Cq.Eval.substitutions Helpers.fig1_db q))

let test_eval_repeated_head_var () =
  let q = pq "Q(x, x) :- Meetings(x, y)" in
  let rel = Cq.Eval.eval Helpers.fig1_db q in
  Helpers.check_int "pairs duplicated" 3 (Relational.Relation.cardinal rel);
  Relational.Relation.iter
    (fun tup ->
      Helpers.check_bool "columns equal" true
        (Relational.Value.equal (Relational.Tuple.get tup 0) (Relational.Tuple.get tup 1)))
    rel

let test_fb_projection_view_unknown_attr () =
  Helpers.check_bool "unknown attribute" true
    (try
       ignore
         (Fbschema.Fb_views.projection_view ~name:"bad" ~rel:"User" ~dist:[ "nope" ] ());
       false
     with Not_found -> true)

let test_lattice_down_foreign_view () =
  let l =
    Disclosure.Lattice.build ~order:Disclosure.Order.rewriting
      ~universe:Helpers.fig3_universe
  in
  Helpers.check_bool "foreign view rejected" true
    (try
       ignore (Disclosure.Lattice.down l [ Helpers.v9 ]);
       false
     with Invalid_argument _ -> true)

let test_service_pipeline_accessor () =
  let p = Pipeline.create [ Helpers.sview "V1(x, y) :- Meetings(x, y)" ] in
  let s = Disclosure.Service.create p in
  Helpers.check_bool "pipeline shared" true (Disclosure.Service.pipeline s == p)

let suite =
  [
    Alcotest.test_case "genmgu arity mismatch" `Quick test_genmgu_arity_mismatch;
    Alcotest.test_case "genmgu shared names" `Quick test_genmgu_shared_names;
    Alcotest.test_case "tagged multi-atom roundtrip" `Quick test_tagged_multiatom_to_query;
    Alcotest.test_case "registry mask errors" `Quick test_registry_mask_errors;
    Alcotest.test_case "registry bit uniqueness" `Quick test_registry_bit_uniqueness;
    Alcotest.test_case "top label comparison" `Quick test_label_same_relation_tops;
    Alcotest.test_case "policy partition views" `Quick test_policy_partition_views;
    Alcotest.test_case "monitor alive mask" `Quick test_monitor_alive_mask;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "querygen friends constant" `Quick test_querygen_friends_constant;
    Alcotest.test_case "eval substitutions" `Quick test_eval_substitutions_exposed;
    Alcotest.test_case "eval repeated head var" `Quick test_eval_repeated_head_var;
    Alcotest.test_case "fb projection view errors" `Quick test_fb_projection_view_unknown_attr;
    Alcotest.test_case "lattice foreign view" `Quick test_lattice_down_foreign_view;
    Alcotest.test_case "service pipeline accessor" `Quick test_service_pipeline_accessor;
  ]
