(* An independent, brute-force decision procedure for single-atom equivalent
   view rewriting, used to cross-validate Disclosure.Rewrite_single.

   By the Levy–Mendelzon–Sagiv bound a single-atom query with an equivalent
   rewriting over a single-atom view has a single-view-atom rewriting, so it
   suffices to enumerate all assignments of the view's head variables to
   terms (query distinguished variables, constants occurring in either atom,
   or one of k fresh existentials), expand, and test classical conjunctive-
   query equivalence via the Chandra–Merlin homomorphism criterion. *)

module Tagged = Disclosure.Tagged

let rec assignments choices = function
  | 0 -> [ [] ]
  | n ->
    let rest = assignments choices (n - 1) in
    List.concat_map (fun c -> List.map (fun r -> c :: r) rest) choices

type candidate_term =
  | C_dist of string
  | C_const of Relational.Value.t
  | C_fresh of int

let rewritable ~(query : Tagged.atom) ~(view : Tagged.atom) =
  if not (String.equal query.Tagged.pred view.Tagged.pred) then false
  else if Tagged.atom_arity query <> Tagged.atom_arity view then false
  else begin
    let qdist = Tagged.distinguished_vars query in
    let vdist = Tagged.distinguished_vars view in
    let consts =
      (List.filter_map (function Tagged.Const v -> Some v | Tagged.Var _ -> None)
         query.Tagged.args
      @ List.filter_map
          (function Tagged.Const v -> Some v | Tagged.Var _ -> None)
          view.Tagged.args)
      |> List.sort_uniq Relational.Value.compare
    in
    let choices =
      List.map (fun x -> C_dist x) qdist
      @ List.map (fun v -> C_const v) consts
      @ List.init (List.length vdist) (fun i -> C_fresh i)
    in
    (* The reference query, with head in first-occurrence order. *)
    let query_q = Tagged.atom_to_query query in
    let expansion theta =
      let table = List.combine vdist theta in
      let term = function
        | Tagged.Const _ as c -> c
        | Tagged.Var (w, Tagged.Existential) -> Tagged.Var ("bfv_" ^ w, Tagged.Existential)
        | Tagged.Var (u, Tagged.Distinguished) -> (
          match List.assoc u table with
          | C_dist x -> Tagged.Var (x, Tagged.Distinguished)
          | C_const v -> Tagged.Const v
          | C_fresh i -> Tagged.Var (Printf.sprintf "bff_%d" i, Tagged.Existential))
      in
      { view with Tagged.args = List.map term view.Tagged.args }
    in
    let valid theta =
      let exp = expansion theta in
      (* Safety: every query head variable must appear in the expansion. *)
      let exp_dist = Tagged.distinguished_vars exp in
      List.for_all (fun x -> List.mem x exp_dist) qdist
      &&
      (* Same head order as the query's canonical head. *)
      let exp_q =
        Cq.Query.make ~name:"E"
          ~head:(List.map (fun x -> Cq.Term.Var x) qdist)
          ~body:
            [
              Cq.Atom.make exp.Tagged.pred
                (List.map
                   (function
                     | Tagged.Const v -> Cq.Term.Const v
                     | Tagged.Var (x, _) -> Cq.Term.Var x)
                   exp.Tagged.args);
            ]
          ()
      in
      Cq.Containment.equivalent query_q exp_q
    in
    List.exists valid (assignments choices (List.length vdist))
  end
