(* Tests for constructive label sufficiency (Answer.via_views) and policy
   analysis (subsumption / redundancy / overlap). *)

module Answer = Disclosure.Answer
module Pipeline = Disclosure.Pipeline
module Policy = Disclosure.Policy
module Sview = Disclosure.Sview
module Rel = Relational.Relation

let pq = Helpers.pq

let v1 = Helpers.sview "V1(x, y) :- Meetings(x, y)"
let v2 = Helpers.sview "V2(x) :- Meetings(x, y)"
let v3 = Helpers.sview "V3(x, y, z) :- Contacts(x, y, z)"
let v6 = Helpers.sview "V6(x, y) :- Contacts(x, y, z)"

let pipeline = Pipeline.create [ v1; v2; v3; v6 ]

let check_reconstruction s =
  let q = pq s in
  match Answer.via_views pipeline Helpers.fig1_db q with
  | None -> Alcotest.failf "%s should be answerable" s
  | Some via ->
    Alcotest.check Helpers.relation_testable s (Cq.Eval.eval Helpers.fig1_db q) via

let test_via_views_single_atom () =
  check_reconstruction "Q(x) :- Meetings(x, y)";
  check_reconstruction "Q(x, y) :- Meetings(x, y)";
  check_reconstruction "Q(x) :- Meetings(x, 'Cathy')";
  check_reconstruction "Q() :- Meetings(x, y)"

let test_via_views_join () =
  (* The Figure 1 join query, answered through V1 and V3 only. *)
  check_reconstruction "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')";
  check_reconstruction "Q(x, p, e) :- Meetings(x, p), Contacts(p, e, r)";
  (* Self-join with repeated relation. *)
  check_reconstruction "Q(x, y) :- Meetings(x, p), Meetings(y, p)"

let test_via_views_top () =
  let weak = Pipeline.create [ v2 ] in
  Helpers.check_bool "unanswerable is None" true
    (Answer.via_views weak Helpers.fig1_db (pq "Q(x, y) :- Meetings(x, y)") = None);
  Helpers.check_bool "unknown relation is None" true
    (Answer.via_views pipeline Helpers.fig1_db (pq "Q(x) :- Unknown(x)") = None)

let test_via_views_constants_in_head () =
  check_reconstruction "Q(x, 'tag') :- Meetings(x, 'Cathy')"

(* --- Policy analysis -------------------------------------------------- *)

let registry = Pipeline.registry pipeline

let test_subsumption () =
  let policy =
    Policy.make registry
      [
        ("big", [ v1; v2; v3 ]);
        ("small", [ v2 ]);
        ("other", [ v6 ]);
      ]
  in
  let parts = Policy.partitions policy in
  Helpers.check_bool "big subsumes small" true (Policy.subsumes parts.(0) parts.(1));
  Helpers.check_bool "small does not subsume big" false (Policy.subsumes parts.(1) parts.(0));
  Helpers.check_bool "big does not subsume other" false (Policy.subsumes parts.(0) parts.(2));
  Alcotest.check
    Alcotest.(list string)
    "small is redundant" [ "small" ] (Policy.redundant_partitions policy)

let test_redundancy_equal_partitions () =
  let policy = Policy.make registry [ ("a", [ v2 ]); ("b", [ v2 ]) ] in
  Alcotest.check
    Alcotest.(list string)
    "later duplicate reported" [ "b" ] (Policy.redundant_partitions policy)

let test_no_redundancy () =
  let policy = Policy.make registry [ ("m", [ v1 ]); ("c", [ v3 ]) ] in
  Alcotest.check Alcotest.(list string) "none" [] (Policy.redundant_partitions policy)

let test_overlap () =
  let policy = Policy.make registry [ ("a", [ v1; v2; v3 ]); ("b", [ v2; v6 ]) ] in
  let parts = Policy.partitions policy in
  Alcotest.check
    Alcotest.(list string)
    "common views" [ "V2" ]
    (List.map (fun v -> v.Sview.name) (Policy.overlap registry parts.(0) parts.(1)))

let suite =
  [
    Alcotest.test_case "via_views single atoms" `Quick test_via_views_single_atom;
    Alcotest.test_case "via_views joins" `Quick test_via_views_join;
    Alcotest.test_case "via_views top" `Quick test_via_views_top;
    Alcotest.test_case "via_views constants in head" `Quick test_via_views_constants_in_head;
    Alcotest.test_case "partition subsumption" `Quick test_subsumption;
    Alcotest.test_case "equal partitions" `Quick test_redundancy_equal_partitions;
    Alcotest.test_case "no redundancy" `Quick test_no_redundancy;
    Alcotest.test_case "partition overlap" `Quick test_overlap;
  ]
