(* Crash-torture suite for the v2 decision journal (its own executable: it
   performs a few thousand recoveries, which would bloat the main suite).

   The property, byte-exhaustively: for a journal holding a known history,

   - truncating the file at EVERY byte offset (what a crash mid-append can
     leave behind) must recover to the exact state after the last fully
     committed record — the torn tail is dropped and reported, never
     misapplied;
   - flipping EVERY byte of a record (bit rot, not a crash) must either
     leave recovery exact-prefix-equivalent or produce a typed fail-closed
     refusal naming the file — never a wrong monitor state;
   - the checkpoint file is written atomically, so ANY damage to it (every
     truncation, every byte flip) is a typed [`Corrupt_checkpoint] refusal. *)

module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Pipeline = Disclosure.Pipeline
module Sview = Disclosure.Sview

let pq = Cq.Parser.query_exn

let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"

(* One principal name exercises the escape path, so flips land inside
   backslash escapes too. *)
let hostile = "tab\tapp"

let make_service ?journal () =
  let service = Service.create ?journal (Pipeline.create [ v1; v2; v3 ]) in
  Service.register service ~principal:"crm-app"
    ~partitions:[ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ];
  Service.register_stateless service ~principal:"calendar-app" ~views:[ v2 ];
  Service.register_stateless service ~principal:hostile ~views:[ v2 ];
  service

let q_contacts = pq "Q(x, y, z) :- Contacts(x, y, z)"
let q_meetings = pq "Q(x, y) :- Meetings(x, y)"
let q_slots = pq "Q(x) :- Meetings(x, y)"

(* The deterministic history: one journal record per step. [run ~after]
   calls [after i service] after step [i] (1-based), e.g. to checkpoint. *)
let history : (string * Cq.Query.t option) list =
  [
    ("crm-app", Some q_contacts);
    (hostile, Some q_slots);
    ("calendar-app", Some q_meetings);
    ("crm-app", None) (* reset *);
    ("crm-app", Some q_slots);
    ("calendar-app", Some q_slots);
    ("crm-app", Some q_contacts);
    (hostile, Some q_meetings);
  ]

let n_records = List.length history

(* Run the history against [service], returning states.(i) = snapshot after
   the first [i] records (states.(0) = initial). *)
let run_history ?(after = fun _ _ -> ()) service =
  let states = Array.make (n_records + 1) (Service.snapshot service) in
  List.iteri
    (fun i (principal, q) ->
      (match q with
      | Some q -> ignore (Service.submit service ~principal q)
      | None -> Service.reset service ~principal);
      states.(i + 1) <- Service.snapshot service;
      after (i + 1) service)
    history;
  states

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let count_newlines s = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let rm f = try Sys.remove f with Sys_error _ -> ()

let cleanup base =
  rm base;
  rm (base ^ ".ckpt");
  rm (base ^ ".ckpt.tmp");
  for i = 1 to 16 do
    rm (Printf.sprintf "%s.%d" base i)
  done

let with_base f =
  let base = Filename.temp_file "disclosure-crash" ".journal" in
  Fun.protect ~finally:(fun () -> cleanup base) (fun () -> f base)

let recover_fresh base =
  let fresh = make_service () in
  Service.recover fresh ~journal:base |> Result.map (fun r -> (r, Service.snapshot fresh))

(* --- truncation: every byte offset ------------------------------------ *)

let test_truncate_every_offset () =
  with_base (fun base ->
      let service = make_service ~journal:base () in
      let states = run_history service in
      Service.close service;
      let whole = read_file base in
      Alcotest.(check int) "every record committed" n_records (count_newlines whole);
      for cut = 0 to String.length whole do
        write_file base (String.sub whole 0 cut);
        let committed = count_newlines (String.sub whole 0 cut) in
        match recover_fresh base with
        | Error e ->
          Alcotest.failf "cut at %d: truncation must always recover, got %s" cut
            (Service.recovery_error_to_string e)
        | Ok (r, snap) ->
          if r.Service.applied <> committed then
            Alcotest.failf "cut at %d: applied %d, expected %d committed records" cut
              r.Service.applied committed;
          if snap <> states.(committed) then
            Alcotest.failf "cut at %d: recovered state is not the exact prefix state" cut;
          let expect_torn = cut > 0 && whole.[cut - 1] <> '\n' in
          if r.Service.torn_tail <> expect_torn then
            Alcotest.failf "cut at %d: torn_tail reported %b, expected %b" cut
              r.Service.torn_tail expect_torn
      done)

(* --- crash / restart / crash: append after a torn-tail recovery -------- *)

(* The production restart sequence (Server.create then Server.recover on the
   same base): recover over a torn tail, keep serving on the same active
   segment, crash, recover again. Recovery must truncate the tolerated torn
   record — otherwise the first post-recovery append merges with the partial
   bytes into a line no parser accepts, and the second recovery fails
   closed, losing every post-restart committed decision. *)
let test_append_after_torn_recovery () =
  with_base (fun base ->
      let service = make_service ~journal:base () in
      ignore (run_history service);
      Service.close service;
      let whole = read_file base in
      for cut = 1 to String.length whole - 1 do
        if whole.[cut - 1] <> '\n' then begin
          write_file base (String.sub whole 0 cut);
          let committed = count_newlines (String.sub whole 0 cut) in
          (* Restart in production order: open the journal for appending
             first, then recover over it. *)
          let restarted = make_service ~journal:base () in
          (match Service.recover restarted ~journal:base with
          | Error e ->
            Alcotest.failf "cut at %d: first recovery failed: %s" cut
              (Service.recovery_error_to_string e)
          | Ok r ->
            if not r.Service.torn_tail then
              Alcotest.failf "cut at %d: torn tail not reported" cut);
          ignore (Service.submit restarted ~principal:"crm-app" q_slots);
          ignore (Service.submit restarted ~principal:"calendar-app" q_meetings);
          let live = Service.snapshot restarted in
          Service.close restarted;
          match recover_fresh base with
          | Error e ->
            Alcotest.failf "cut at %d: recovery after post-torn appends failed: %s"
              cut
              (Service.recovery_error_to_string e)
          | Ok (r, snap) ->
            if r.Service.applied <> committed + 2 then
              Alcotest.failf "cut at %d: applied %d, expected %d" cut
                r.Service.applied (committed + 2);
            if r.Service.torn_tail then
              Alcotest.failf "cut at %d: tail must be clean after truncation" cut;
            if snap <> live then
              Alcotest.failf "cut at %d: second recovery diverges from the live state"
                cut
        end
      done)

(* --- group commit: torn batches recover to a whole-decision prefix ----- *)

(* Run the history under group commit (a covering flush every [batch]
   decisions), then torture the journal at every byte offset. The batched
   journal must be bit-identical to the per-decision journal, and any
   truncation — including mid-batch, where a crash tears records that were
   never individually flushed — must recover to the exact state after the
   last fully committed record, never a partial application of a batch. *)
let test_group_commit_truncate_every_offset () =
  with_base (fun base_plain ->
      with_base (fun base ->
          let plain = make_service ~journal:base_plain () in
          ignore (run_history plain);
          Service.close plain;
          let plain_journal = read_file base_plain in
          let batch = 3 in
          let service = make_service ~journal:base () in
          let states = Array.make (n_records + 1) (Service.snapshot service) in
          let finish_batch () =
            match Service.batch_end service with
            | Ok () -> ()
            | Error reason ->
              Alcotest.failf "batch_end refused: %s" (Disclosure.Guard.refusal_to_tag reason)
          in
          Service.batch_begin service;
          List.iteri
            (fun i (principal, q) ->
              (match q with
              | Some q -> ignore (Service.submit service ~principal q)
              | None -> Service.reset service ~principal);
              states.(i + 1) <- Service.snapshot service;
              if (i + 1) mod batch = 0 then begin
                finish_batch ();
                Service.batch_begin service
              end)
            history;
          finish_batch ();
          let flushes = Service.flush_count service in
          Service.close service;
          Alcotest.(check int) "one flush per batch" ((n_records + batch - 1) / batch)
            flushes;
          let whole = read_file base in
          Alcotest.(check bool) "batched journal is bit-identical to per-decision" true
            (String.equal whole plain_journal);
          for cut = 0 to String.length whole do
            write_file base (String.sub whole 0 cut);
            let committed = count_newlines (String.sub whole 0 cut) in
            match recover_fresh base with
            | Error e ->
              Alcotest.failf "cut at %d: torn group commit must always recover, got %s"
                cut
                (Service.recovery_error_to_string e)
            | Ok (r, snap) ->
              if r.Service.applied <> committed then
                Alcotest.failf "cut at %d: applied %d, expected %d committed records" cut
                  r.Service.applied committed;
              if snap <> states.(committed) then
                Alcotest.failf
                  "cut at %d: recovered state is not the whole-decision prefix" cut
          done))

(* --- byte flips: every byte, several patterns -------------------------- *)

let flip_patterns = [ 0x01; 0x80; 0xff ]

(* Flip every byte of the record on line [line] (0-based). Mid-file damage
   must refuse with a typed [`Corrupt_record]; damage to the final record
   may instead surface as a tolerated torn tail (e.g. flipping its
   newline), in which case the state must still be the exact prefix. *)
let torture_record ~line =
  with_base (fun base ->
      let service = make_service ~journal:base () in
      let states = run_history service in
      Service.close service;
      let whole = read_file base in
      let line_start =
        let rec nth_line i from =
          if i = 0 then from else nth_line (i - 1) (String.index_from whole from '\n' + 1)
        in
        nth_line line 0
      in
      let line_end = String.index_from whole line_start '\n' in
      for pos = line_start to line_end do
        List.iter
          (fun pattern ->
            let damaged = Bytes.of_string whole in
            Bytes.set damaged pos
              (Char.chr (Char.code whole.[pos] lxor pattern land 0xff));
            write_file base (Bytes.to_string damaged);
            match recover_fresh base with
            | Error e ->
              if e.Service.kind <> `Corrupt_record && e.Service.kind <> `Replay then
                Alcotest.failf "flip %#x at %d: unexpected error kind in %s" pattern pos
                  (Service.recovery_error_to_string e)
            | Ok (r, snap) ->
              (* Tolerated only as an exact prefix — never a wrong state. *)
              if r.Service.applied > n_records || snap <> states.(r.Service.applied)
              then
                Alcotest.failf
                  "flip %#x at %d: recovery accepted damage with a non-prefix state"
                  pattern pos;
              if line < n_records - 1 && r.Service.applied > line then
                Alcotest.failf
                  "flip %#x at %d: mid-file damage replayed past the damaged record"
                  pattern pos)
          flip_patterns
      done)

let test_flip_middle_record () = torture_record ~line:(n_records / 2)

let test_flip_final_record () = torture_record ~line:(n_records - 1)

let test_flip_first_record () = torture_record ~line:0

(* --- checkpoint damage: no torn-tail excuse ---------------------------- *)

let with_checkpointed_base f =
  with_base (fun base ->
      let service = make_service ~journal:base () in
      let states =
        run_history service
          ~after:(fun i service ->
            if i = 4 then
              match Service.checkpoint service with
              | Ok () -> ()
              | Error e -> Alcotest.fail e)
      in
      Service.close service;
      f base states)

let test_checkpoint_recovers_exactly () =
  with_checkpointed_base (fun base states ->
      match recover_fresh base with
      | Ok (r, snap) ->
        Alcotest.(check int) "only the tail replays" (n_records - 4) r.Service.applied;
        Alcotest.(check bool) "restored from the checkpoint" true
          r.Service.from_checkpoint;
        Alcotest.(check bool) "checkpoint + tail = live" true (snap = states.(n_records))
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e))

let test_checkpoint_damage_fails_closed () =
  with_checkpointed_base (fun base _states ->
      let ckpt = base ^ ".ckpt" in
      let whole = read_file ckpt in
      let check_refused what =
        match recover_fresh base with
        | Error e when e.Service.kind = `Corrupt_checkpoint ->
          if e.Service.file <> ckpt then
            Alcotest.failf "%s: error does not name the checkpoint file" what
        | Error e ->
          Alcotest.failf "%s: expected `Corrupt_checkpoint, got %s" what
            (Service.recovery_error_to_string e)
        | Ok _ -> Alcotest.failf "%s: damaged checkpoint must fail closed" what
      in
      (* Every truncation: the rename was atomic, so a short file can only
         be corruption, never a crash artifact. *)
      for cut = 0 to String.length whole - 1 do
        write_file ckpt (String.sub whole 0 cut);
        check_refused (Printf.sprintf "truncate at %d" cut)
      done;
      (* Every byte flip. *)
      for pos = 0 to String.length whole - 1 do
        List.iter
          (fun pattern ->
            let damaged = Bytes.of_string whole in
            Bytes.set damaged pos
              (Char.chr (Char.code whole.[pos] lxor pattern land 0xff));
            write_file ckpt (Bytes.to_string damaged);
            check_refused (Printf.sprintf "flip %#x at %d" pattern pos))
          flip_patterns
      done;
      (* Restored, recovery works again. *)
      write_file ckpt whole;
      match recover_fresh base with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Service.recovery_error_to_string e))

(* Truncating the post-checkpoint tail behaves exactly like truncating an
   un-checkpointed journal, offset by the checkpoint's coverage. *)
let test_truncate_tail_after_checkpoint () =
  with_checkpointed_base (fun base states ->
      let whole = read_file base in
      for cut = 0 to String.length whole do
        write_file base (String.sub whole 0 cut);
        let committed = count_newlines (String.sub whole 0 cut) in
        match recover_fresh base with
        | Error e ->
          Alcotest.failf "tail cut at %d: %s" cut (Service.recovery_error_to_string e)
        | Ok (r, snap) ->
          if r.Service.applied <> committed || snap <> states.(4 + committed) then
            Alcotest.failf "tail cut at %d: not the exact prefix state" cut
      done)

(* --- spill-file torture: the tiered store's scratch file ---------------- *)

module Guard = Disclosure.Guard

let crm_partitions = [ ("meetings", [ v1; v2 ]); ("contacts", [ v3 ]) ]
let cal_partitions = [ ("slots", [ v2 ]) ]

(* A budget-1 tiered pair with crm-app's dirty state spilled: the calendar
   touch's fault-in displaces it. *)
let make_spilled spill =
  let service = Service.create (Pipeline.create [ v1; v2; v3 ]) in
  let store = Store.create ~budget:(Store.Principals 1) ~spill service in
  Store.register store ~principal:"crm-app" ~partitions:crm_partitions;
  Store.register store ~principal:"calendar-app" ~partitions:cal_partitions;
  (match Service.submit service ~principal:"crm-app" q_contacts with
  | Monitor.Answered -> ()
  | d -> Alcotest.failf "fixture: crm setup got %a" Monitor.pp_decision d);
  ignore (Service.submit service ~principal:"calendar-app" q_slots);
  Store.enforce store;
  if Service.resident_monitor service "crm-app" <> None then
    Alcotest.fail "fixture: crm-app did not spill";
  (service, store)

(* The always-resident twin's state once the probe query succeeds. *)
let spill_probe_expected () =
  let service = Service.create (Pipeline.create [ v1; v2; v3 ]) in
  Service.register service ~principal:"crm-app" ~partitions:crm_partitions;
  Service.register service ~principal:"calendar-app" ~partitions:cal_partitions;
  ignore (Service.submit service ~principal:"crm-app" q_contacts);
  ignore (Service.submit service ~principal:"calendar-app" q_slots);
  ignore (Service.submit service ~principal:"crm-app" q_contacts);
  Service.snapshot service

(* Flip every byte of the spill file under every pattern. A flip inside the
   spilled record must refuse the touching query with a typed
   [Resource (Spill _)] — never fault in a wrong state, never treat the
   principal as fresh — and repairing the byte must restore service. A flip
   outside the record (the file header) leaves the read untouched: the
   fault-in must then return the exact spilled state. *)
let test_spill_flip_every_byte () =
  let expected = spill_probe_expected () in
  let spill = Filename.temp_file "disclosure-crash" ".spill" in
  Fun.protect
    ~finally:(fun () -> rm spill)
    (fun () ->
      let fixture = ref (make_spilled spill) in
      let good = ref (read_file spill) in
      for pos = 0 to String.length !good - 1 do
        List.iter
          (fun pattern ->
            let service, store = !fixture in
            let damaged = Bytes.of_string !good in
            Bytes.set damaged pos
              (Char.chr (Char.code !good.[pos] lxor pattern land 0xff));
            write_file spill (Bytes.to_string damaged);
            match Service.submit service ~principal:"crm-app" q_contacts with
            | Monitor.Refused (Guard.Resource (Guard.Spill _)) ->
              (* Fail-closed: still spilled, nothing faulted in; the repair
                 is observed on the next touch. *)
              if Service.resident_monitor service "crm-app" <> None then
                Alcotest.failf "flip %#x at %d: refused yet faulted in" pattern pos;
              write_file spill !good
            | Monitor.Answered ->
              if Service.snapshot service <> expected then
                Alcotest.failf "flip %#x at %d: answered with a wrong state" pattern
                  pos;
              Store.close store;
              fixture := make_spilled spill;
              good := read_file spill
            | d ->
              Alcotest.failf "flip %#x at %d: unexpected decision %a" pattern pos
                Monitor.pp_decision d)
          flip_patterns
      done;
      let service, store = !fixture in
      write_file spill !good;
      (match Service.submit service ~principal:"crm-app" q_contacts with
      | Monitor.Answered -> ()
      | d -> Alcotest.failf "restored spill must fault in, got %a" Monitor.pp_decision d);
      if Service.snapshot service <> expected then
        Alcotest.fail "restored spill faulted in a wrong state";
      Store.close store)

(* Truncate the spill file at every offset: the spilled record is the file's
   suffix, so every proper truncation tears it and must refuse typed;
   rewriting the full bytes restores the exact state. *)
let test_spill_truncate_every_offset () =
  let expected = spill_probe_expected () in
  let spill = Filename.temp_file "disclosure-crash" ".spill" in
  Fun.protect
    ~finally:(fun () -> rm spill)
    (fun () ->
      let service, store = make_spilled spill in
      let good = read_file spill in
      for cut = 0 to String.length good - 1 do
        write_file spill (String.sub good 0 cut);
        (match Service.submit service ~principal:"crm-app" q_contacts with
        | Monitor.Refused (Guard.Resource (Guard.Spill _)) -> ()
        | d ->
          Alcotest.failf "cut at %d: a torn spill record must refuse, got %a" cut
            Monitor.pp_decision d);
        if Service.resident_monitor service "crm-app" <> None then
          Alcotest.failf "cut at %d: refused yet faulted in" cut
      done;
      write_file spill good;
      (match Service.submit service ~principal:"crm-app" q_contacts with
      | Monitor.Answered -> ()
      | d -> Alcotest.failf "rewritten spill must fault in, got %a" Monitor.pp_decision d);
      if Service.snapshot service <> expected then
        Alcotest.fail "rewritten spill faulted in a wrong state";
      Store.close store)

let () =
  Alcotest.run "disclosure-crash"
    [
      ( "torture",
        [
          Alcotest.test_case "truncate the journal at every byte offset" `Quick
            test_truncate_every_offset;
          Alcotest.test_case "append after a torn-tail recovery, then recover again"
            `Quick test_append_after_torn_recovery;
          Alcotest.test_case "truncate a group-commit journal at every byte offset"
            `Quick test_group_commit_truncate_every_offset;
          Alcotest.test_case "flip every byte of the first record" `Quick
            test_flip_first_record;
          Alcotest.test_case "flip every byte of a middle record" `Quick
            test_flip_middle_record;
          Alcotest.test_case "flip every byte of the final record" `Quick
            test_flip_final_record;
          Alcotest.test_case "checkpoint + tail recovers exactly" `Quick
            test_checkpoint_recovers_exactly;
          Alcotest.test_case "any checkpoint damage fails closed" `Quick
            test_checkpoint_damage_fails_closed;
          Alcotest.test_case "truncate the tail after a checkpoint" `Quick
            test_truncate_tail_after_checkpoint;
          Alcotest.test_case "flip every byte of a spill record" `Quick
            test_spill_flip_every_byte;
          Alcotest.test_case "truncate the spill file at every offset" `Quick
            test_spill_truncate_every_offset;
        ] );
    ]
