(* Chinese Wall policies (Examples 6.2 and 6.3).

   Alice allows an app to read either her calendar or her address book, but
   never both. The policy has two partitions; the reference monitor keeps one
   alive-bit per partition and needs no query history.

   Run with: dune exec examples/chinese_wall.exe *)

module Pipeline = Disclosure.Pipeline
module Policy = Disclosure.Policy
module Monitor = Disclosure.Monitor
module Sview = Disclosure.Sview

let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"
let v6 = Sview.of_string "V6(x, y) :- Contacts(x, y, z)"
let v7 = Sview.of_string "V7(x, z) :- Contacts(x, y, z)"

let () =
  let pipeline = Pipeline.create [ v1; v2; v3; v6; v7 ] in
  let registry = Pipeline.registry pipeline in
  (* Example 6.2: W1 = {V1}, W2 = {V3} — all of Meetings or all of Contacts,
     with the smaller views implied. *)
  let policy = Policy.make registry [ ("meetings", [ v1; v2 ]); ("contacts", [ v3; v6; v7 ]) ] in
  let monitor = Monitor.create policy in

  let show_alive () =
    Format.printf "     alive partitions: [%s]@."
      (String.concat "; " (Monitor.alive monitor))
  in

  Format.printf "=== Chinese Wall: Meetings XOR Contacts ===@.";
  show_alive ();

  let submit s =
    let q = Cq.Parser.query_exn s in
    let d = Monitor.submit_query monitor pipeline q in
    Format.printf "  %-50s -> %a@." s Monitor.pp_decision d;
    show_alive ()
  in

  (* The app starts reading contact names and emails (view V6)... *)
  submit "Q(x, y) :- Contacts(x, y, z)";
  (* ...then positions (V7): still inside the contacts side of the wall. *)
  submit "Q(x, z) :- Contacts(x, y, z)";
  (* Now it tries the calendar: refused — the wall has been chosen. *)
  submit "Q(x) :- Meetings(x, y)";
  (* Refusals leave the state unchanged: contacts queries still work. *)
  submit "Q() :- Contacts(x, y, z)";

  Format.printf
    "@.The monitor stores one bit per partition (Example 6.3); no query history@.\
     is ever consulted, yet cumulative disclosure is bounded by one partition.@."
