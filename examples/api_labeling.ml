(* Labeling real API surfaces: FQL and the Graph API (Section 7.1).

   Facebook exposed the same data through two APIs, each with hand-written
   permission documentation — and the documentation drifted (Table 2). Here
   both surface syntaxes are parsed, translated to conjunctive queries, and
   machine-labeled: corresponding requests provably get identical labels.

   Run with: dune exec examples/api_labeling.exe *)

module Pipeline = Disclosure.Pipeline
module Label = Disclosure.Label

let pipeline = Fbschema.Fb_views.pipeline ()

let registry = Pipeline.registry pipeline

let schema = Fbschema.Fb_schema.schema

let pairs =
  [
    ("SELECT birthday FROM user WHERE uid = me()", "me?fields=birthday");
    ("SELECT languages FROM user WHERE uid = me()", "me?fields=languages");
    ("SELECT quotes FROM user WHERE uid = me()", "me?fields=quotes");
    ("SELECT name, pic FROM user WHERE uid = me()", "me?fields=name,pic");
    ("SELECT uid, birthday FROM user WHERE is_friend = true", "me/friends?fields=uid,birthday");
    ("SELECT page_id FROM like WHERE uid = me()", "me/likes?fields=page_id");
    ("SELECT timezone FROM user WHERE uid = me()", "me?fields=timezone");
    ("SELECT relationship_status FROM user WHERE uid = me()", "me?fields=relationship_status");
  ]

let () =
  Format.printf "=== One labeler, two API surfaces ===@.@.";
  Format.printf "%-55s %-40s %-28s %s@." "FQL" "Graph API" "machine label" "agree?";
  Format.printf "%s@." (String.make 135 '-');
  List.iter
    (fun (fql_s, graph_s) ->
      let qf = Fb_api.Fql.query_exn schema fql_s in
      let qg = Fb_api.Graph_api.query_exn graph_s in
      let lf = Pipeline.label pipeline qf in
      let lg = Pipeline.label pipeline qg in
      Format.printf "%-55s %-40s %-28s %b@." fql_s graph_s
        (Format.asprintf "%a" (Label.pp registry) lf)
        (Label.equal lf lg))
    pairs;

  (* FQL's join idiom: friends' birthdays via an IN subquery. Under the
     single-atom view model this dissects into a Friend-list part and a User
     part; the User part alone reveals arbitrary users' birthdays, so the
     denormalized is_friend form is the faithful way to scope it. *)
  Format.printf "@.=== FQL's IN-subquery join ===@.";
  let join =
    Fb_api.Fql.query_exn schema
      "SELECT birthday FROM user WHERE uid IN (SELECT friend_uid FROM friend WHERE uid = me())"
  in
  Format.printf "  %s@."
    "SELECT birthday FROM user WHERE uid IN (SELECT friend_uid FROM friend WHERE uid = me())";
  Format.printf "  translates to: %a@." Cq.Query.pp join;
  Format.printf "  label: %a@." (Label.pp registry) (Pipeline.label pipeline join);
  Format.printf
    "  (⊤ on the User atom: without the is_friend scoping, answering the raw@.\
  \   join would require birthdays of arbitrary users — see the join-view@.\
  \   example for the multi-atom-view treatment)@.";

  (* A small multi-app service, as in Figure 2. *)
  Format.printf "@.=== Multi-app service ===@.";
  let service = Disclosure.Service.create pipeline in
  let view name = Option.get (Fbschema.Fb_views.by_name name) in
  Disclosure.Service.register_stateless service ~principal:"birthday-calendar"
    ~views:[ view "friends_birthday"; view "friend_public"; view "user_public" ];
  Disclosure.Service.register_stateless service ~principal:"music-match"
    ~views:[ view "user_likes"; view "friends_likes"; view "user_public" ];
  let requests =
    [
      ("birthday-calendar", "me/friends?fields=uid,birthday");
      ("birthday-calendar", "me?fields=languages");
      ("music-match", "me?fields=languages");
      ("music-match", "me/friends?fields=uid,birthday");
    ]
  in
  List.iter
    (fun (app, req) ->
      let q = Fb_api.Graph_api.query_exn req in
      let d = Disclosure.Service.submit service ~principal:app q in
      Format.printf "  %-20s %-40s -> %a@." app req Disclosure.Monitor.pp_decision d)
    requests
