(* Quickstart: the paper's running example (Figure 1).

   Alice keeps a calendar (Meetings) and an address book (Contacts). She is
   willing to disclose the time slots of her appointments (view V2) but
   nothing more. Apps ask arbitrary conjunctive queries; the labeler maps each
   query to the security views needed to answer it and a reference monitor
   enforces Alice's policy.

   Run with: dune exec examples/quickstart.exe *)

module Pipeline = Disclosure.Pipeline
module Policy = Disclosure.Policy
module Monitor = Disclosure.Monitor
module Label = Disclosure.Label
module Sview = Disclosure.Sview

let schema =
  Relational.Schema.of_list
    [
      { name = "Meetings"; attrs = [ "time"; "person" ] };
      { name = "Contacts"; attrs = [ "person"; "email"; "position" ] };
    ]

let database =
  let db = Relational.Database.create schema in
  let db =
    Relational.Database.insert_rows db "Meetings"
      [ [ "9"; "Jim" ]; [ "10"; "Cathy" ]; [ "12"; "Bob" ] ]
  in
  Relational.Database.insert_rows db "Contacts"
    [
      [ "Jim"; "jim@e.com"; "Manager" ];
      [ "Cathy"; "cathy@e.com"; "Intern" ];
      [ "Bob"; "bob@e.com"; "Consultant" ];
    ]

(* The security views of Figure 1 (b). *)
let v1 = Sview.of_string "V1(x, y) :- Meetings(x, y)"
let v2 = Sview.of_string "V2(x) :- Meetings(x, y)"
let v3 = Sview.of_string "V3(x, y, z) :- Contacts(x, y, z)"

let () =
  let pipeline = Pipeline.create [ v1; v2; v3 ] in
  let registry = Pipeline.registry pipeline in

  Format.printf "=== Security views ===@.";
  List.iter (fun v -> Format.printf "  %a@." Sview.pp v) [ v1; v2; v3 ];

  (* Label the queries of Figure 1 (c). *)
  let queries =
    [
      "Q1(x) :- Meetings(x, 'Cathy')";
      "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')";
      "Q3(x) :- Meetings(x, y)";
      (* the time slots — exactly V2 *)
    ]
  in
  Format.printf "@.=== Disclosure labels ===@.";
  List.iter
    (fun s ->
      let q = Cq.Parser.query_exn s in
      let label = Pipeline.label pipeline q in
      Format.printf "  %-55s label: %a@." s (Label.pp registry) label)
    queries;

  (* Alice's policy: only V2 may be disclosed. *)
  let policy = Policy.stateless registry [ v2 ] in
  let monitor = Monitor.create policy in
  Format.printf "@.=== Policy: disclose V2 (time slots) only ===@.";
  List.iter
    (fun s ->
      let q = Cq.Parser.query_exn s in
      let decision = Monitor.submit_query monitor pipeline q in
      Format.printf "  %-55s -> %a@." s Monitor.pp_decision decision;
      (* Answer the queries the monitor allows. *)
      if decision = Monitor.Answered then
        Format.printf "     answer: %a@." Relational.Relation.pp (Cq.Eval.eval database q))
    queries;

  Format.printf "@.Q1 and Q2 are rejected (their labels are above V2), as in Section 1.1.@."
