(* Key constraints and the chase: answering across permission families.

   Under the paper's constraint-free model, a single-atom query requesting
   attributes from two different permission families (say the current user's
   birthday and music) is unanswerable: no single view reveals both, and
   without integrity constraints the join of two views need not reproduce the
   original tuple pairing. But uid is a key of User. Chasing with the key
   dependency makes the join lossless, and the FD-aware rewriting engine
   finds the two-view rewriting.

   Run with: dune exec examples/key_constraints.exe *)

module General = Disclosure.General
module Fb = Fbschema.Fb_schema

(* uid is the key of User. *)
let user_key = Cq.Fd.key Fb.schema ~rel:"User" ~key_positions:[ 0 ]

(* A few of the Facebook permission views, as conjunctive queries. *)
let view name =
  let v = Option.get (Fbschema.Fb_views.by_name name) in
  (name, Disclosure.Sview.to_query v)

let permissions =
  [ view "user_birthday"; view "user_likes"; view "user_location"; view "user_contact" ]

let user_query ~head_attrs =
  let cell attr =
    if attr = "uid" then Cq.Term.Const Fb.me
    else if List.mem attr head_attrs then Cq.Term.Var attr
    else Cq.Term.Var (attr ^ "_e")
  in
  Cq.Query.make ~name:"Q"
    ~head:(List.map (fun a -> Cq.Term.Var a) head_attrs)
    ~body:[ Cq.Atom.make "User" (List.map cell Fb.user_attrs) ]
    ()

let () =
  let with_fd = General.create ~fds:[ user_key ] permissions in
  let without_fd = General.create permissions in

  Format.printf "=== Cross-family projections under the uid key ===@.@.";
  Format.printf "granted permissions: %s@.@."
    (String.concat ", " (List.map fst permissions));
  let cases =
    [
      [ "birthday" ];
      [ "birthday"; "music" ];
      [ "birthday"; "music"; "timezone" ];
      [ "birthday"; "email"; "music"; "hometown" ];
      [ "birthday"; "quotes" ] (* quotes needs user_about_me: not granted *);
    ]
  in
  Format.printf "%-45s %-22s %s@." "requested attributes (current user)"
    "without key FD" "with key FD";
  Format.printf "%s@." (String.make 90 '-');
  List.iter
    (fun attrs ->
      let q = user_query ~head_attrs:attrs in
      Format.printf "%-45s %-22b %b@."
        (String.concat ", " attrs)
        (General.answerable without_fd q)
        (General.answerable with_fd q))
    cases;

  (* Show the witness rewriting for the birthday+music case. *)
  let q = user_query ~head_attrs:[ "birthday"; "music" ] in
  (match General.find_rewriting with_fd q with
  | Some rw -> Format.printf "@.witness: %a@." Cq.Query.pp rw
  | None -> Format.printf "@.unexpected: no rewriting@.");

  (* The chase itself, on a small example. *)
  Format.printf "@.=== The chase at work ===@.";
  let two = Cq.Parser.query_exn "Q(b, m) :- P('me', b, x), P('me', y, m)" in
  let p_key = Cq.Fd.make ~rel:"P" ~lhs:[ 0 ] ~rhs:[ 1; 2 ] in
  Format.printf "before: %a@." Cq.Query.pp two;
  (match Cq.Chase.chase ~fds:[ p_key ] two with
  | Some chased -> Format.printf "after:  %a@." Cq.Query.pp chased
  | None -> Format.printf "after:  unsatisfiable@.");
  let conflict = Cq.Parser.query_exn "Q() :- P('me', 'a', x), P('me', 'b', y)" in
  Format.printf "conflicting constants (%a): %s@." Cq.Query.pp conflict
    (match Cq.Chase.chase ~fds:[ p_key ] conflict with
    | None -> "unsatisfiable under the key — refused queries can be recognized as vacuous"
    | Some _ -> "?")
