(* Multi-atom (join) security views — beyond the paper's Section 5 scope.

   The paper models Facebook's friends-birthday permission with an is_friend
   denormalization column because its labeling algorithms require single-atom
   views. The multi-atom rewriting engine lifts that restriction: permissions
   can be genuine join views, and the reference monitor enforces them through
   equivalent-rewriting checks. This example shows both models agreeing on
   the same requests — the paper's claim that the denormalization "did not
   affect the accuracy of our model", machine-checked.

   Run with: dune exec examples/join_views.exe *)

module General = Disclosure.General

let pq = Cq.Parser.query_exn

(* A compact schema: Friend(owner, friend), Person(uid, birthday, city). *)
let join_model =
  General.create
    [
      ("FriendList", pq "FriendList(y) :- Friend('me', y)");
      ( "FriendsBirthday",
        pq "FriendsBirthday(u, b) :- Friend('me', u), Person(u, b, c)" );
      ("OwnProfile", pq "OwnProfile(b, c) :- Person('me', b, c)");
    ]

let requests =
  [
    ("my own profile", "Q(b, c) :- Person('me', b, c)");
    ("my own birthday", "Q(b) :- Person('me', b, c)");
    ("friends' birthdays (join)", "Q(u, b) :- Friend('me', u), Person(u, b, c)");
    ("anyone's birthday", "Q(u, b) :- Person(u, b, c)");
    ("friend list", "Q(y) :- Friend('me', y)");
    ("friends of others", "Q(x, y) :- Friend(x, y)");
    ("birthday of one friend, twice removed", "Q(b) :- Friend('me', u), Friend(u, v), Person(v, b, c)");
  ]

let () =
  Format.printf "=== Join security views via the multi-atom rewriting engine ===@.@.";
  List.iter
    (fun (name, q) -> Format.printf "  view %-16s %s@." name q)
    (List.map (fun (n, v) -> (n, Cq.Query.to_string v)) (General.views join_model));

  Format.printf "@.%-40s %-10s %s@." "request" "answerable" "individually sufficient views";
  Format.printf "%s@." (String.make 90 '-');
  List.iter
    (fun (what, qs) ->
      let q = pq qs in
      Format.printf "%-40s %-10b %s@." what
        (General.answerable join_model q)
        (String.concat ", " (General.plus join_model q)))
    requests;

  (* A Chinese Wall over join views: social data XOR own profile. *)
  Format.printf "@.=== Chinese Wall over join views ===@.";
  let m =
    General.monitor join_model
      ~partitions:
        [ ("social", [ "FriendList"; "FriendsBirthday" ]); ("own", [ "OwnProfile" ]) ]
  in
  let submit qs =
    let d = General.submit m (pq qs) in
    Format.printf "  %-50s -> %s   (alive: %s)@." qs
      (match d with General.Answered -> "answered" | General.Refused -> "refused")
      (String.concat ", " (General.alive m))
  in
  submit "Q(u, b) :- Friend('me', u), Person(u, b, c)";
  submit "Q(b, c) :- Person('me', b, c)";
  submit "Q(y) :- Friend('me', y)";

  Format.printf "@.=== The denormalization claim, machine-checked ===@.";
  (* The same permissions in the paper's denormalized single-atom model:
     Fd(owner, friend, is_friend), Pd(uid, birthday, city, is_friend). *)
  let denorm =
    Disclosure.Pipeline.create
      [
        Disclosure.Sview.of_string "FriendList(y) :- Fd('me', y, i)";
        Disclosure.Sview.of_string "FriendsBirthday(u, b) :- Pd(u, b, c, true)";
        Disclosure.Sview.of_string "OwnProfile(b, c) :- Pd('me', b, c, i)";
      ]
  in
  let registry = Disclosure.Pipeline.registry denorm in
  let policy = Disclosure.Policy.stateless registry (Disclosure.Pipeline.views denorm) in
  let compare_models (what, join_q, denorm_q) =
    let via_join = General.answerable join_model (pq join_q) in
    let via_denorm =
      Disclosure.Policy.allowed policy (Disclosure.Pipeline.label denorm (pq denorm_q))
    in
    Format.printf "  %-35s join-view: %-6b denormalized: %-6b agree: %b@." what via_join
      via_denorm
      (Bool.equal via_join via_denorm)
  in
  List.iter compare_models
    [
      ("friends' birthdays", "Q(u, b) :- Friend('me', u), Person(u, b, c)",
       "Q(u, b) :- Pd(u, b, c, true)");
      ("own profile", "Q(b, c) :- Person('me', b, c)", "Q(b, c) :- Pd('me', b, c, i)");
      ("anyone's birthday", "Q(u, b) :- Person(u, b, c)", "Q(u, b) :- Pd(u, b, c, i)");
      ("friend list", "Q(y) :- Friend('me', y)", "Q(y) :- Fd('me', y, i)");
    ]
