(* The disclosure lattice of Figure 3, materialized and explored.

   Builds the lattice over the four Meetings projections under the equivalent
   view rewriting order, prints its structure and Hasse diagram, reproduces
   Example 3.5 (a label family that fails to induce a labeler), and emits a
   Graphviz rendering.

   Run with: dune exec examples/calendar_lattice.exe *)

module Order = Disclosure.Order
module Lattice = Disclosure.Lattice
module Tagged = Disclosure.Tagged

let atom s =
  match Tagged.atom_of_query (Cq.Parser.query_exn s) with
  | Ok a -> a
  | Error e -> failwith e

let v1 = atom "V1(x, y) :- Meetings(x, y)"
let v2 = atom "V2(x) :- Meetings(x, y)"
let v4 = atom "V4(y) :- Meetings(x, y)"
let v5 = atom "V5() :- Meetings(x, y)"

let name_of a =
  let names = [ (v1, "V1"); (v2, "V2"); (v4, "V4"); (v5, "V5") ] in
  match List.find_opt (fun (v, _) -> Tagged.iso_equivalent v a) names with
  | Some (_, n) -> n
  | None -> Tagged.atom_to_string a

let () =
  let lattice = Lattice.build ~order:Order.rewriting ~universe:[ v1; v2; v4; v5 ] in
  Format.printf "=== Figure 3: the disclosure lattice over Meetings ===@.";
  Format.printf "universe: V1 (full table), V2 (times), V4 (people), V5 (nonempty?)@.";
  Format.printf "lattice has %d elements:@." (Lattice.size lattice);
  List.iter
    (fun e ->
      let vs = Lattice.views lattice e in
      let label =
        if vs = [] then "⊥ (nothing)"
        else String.concat ", " (List.map name_of vs)
      in
      let marker =
        if e = Lattice.top lattice then " (⊤)"
        else if e = Lattice.bottom lattice then " (⊥)"
        else ""
      in
      Format.printf "  ⇓{%s}%s@." label marker)
    (Lattice.elements lattice);

  let d2 = Lattice.down lattice [ v2 ] in
  let d4 = Lattice.down lattice [ v4 ] in
  Format.printf "@.GLB(⇓V2, ⇓V4) = ⇓V5: %b@."
    (Lattice.glb lattice d2 d4 = Lattice.down lattice [ v5 ]);
  Format.printf "LUB(⇓V2, ⇓V4) is *properly below* ⊤ = ⇓V1: %b@."
    (Lattice.lub lattice d2 d4 <> Lattice.top lattice);
  Format.printf
    "  (both projections together still cannot reconstitute the Meetings table)@.";

  Format.printf "@.decomposable: %b, hence distributive (Theorem 4.8): %b@."
    (Lattice.is_decomposable lattice)
    (Lattice.is_distributive lattice);

  (* Example 3.5: labels drawn from the power set of {V2, V4} do not induce a
     labeler — the GLB ⇓V5 is missing. *)
  let without_v5 =
    [
      Lattice.bottom lattice;
      d2;
      d4;
      Lattice.down lattice [ v2; v4 ];
      Lattice.top lattice;
    ]
  in
  Format.printf "@.Example 3.5 — does ℘({V2, V4}) induce a labeler? %b@."
    (Lattice.labeler_exists lattice without_v5);
  let fixed = Lattice.down lattice [ v5 ] :: without_v5 in
  Format.printf "after GLB-closing (adding ⇓V5): %b@." (Lattice.labeler_exists lattice fixed);

  (* Labeling a query with the fixed family: the full table labels as ⊤. *)
  (match Lattice.label lattice fixed (Lattice.down lattice [ v1 ]) with
  | Some l when l = Lattice.top lattice -> Format.printf "ℓ(⇓V1) = ⊤, as expected.@."
  | Some _ | None -> Format.printf "unexpected label for ⇓V1@.");

  Format.printf "@.=== Graphviz (paste into dot -Tpng) ===@.%s@."
    (Lattice.to_dot
       ~pp_view:(fun ppf v -> Format.pp_print_string ppf (name_of v))
       lattice)
