(* The Facebook permissions audit of Section 7.1 (Table 2).

   Facebook documented, for each of 42 User-table views reachable through
   both FQL and the Graph API, the permissions an app must hold. These are two
   hand-generated disclosure labelings of the same queries — and they
   disagree on six views. The audit below rediscovers exactly Table 2.

   Run with: dune exec examples/facebook_audit.exe *)

module Audit = Disclosure.Audit
module Perms = Fbschema.Fb_permissions

let () =
  Format.printf "=== Auditing Facebook's documented permission labelings ===@.";
  Format.printf "views over the User table exposed by both APIs: %d@."
    (List.length Perms.subjects);

  let discrepancies = Audit.compare_labelings ~left:Perms.fql ~right:Perms.graph in
  Format.printf "documented labelings disagree on %d views:@.@."
    (List.length discrepancies);

  Format.printf "%-22s | %-35s | %-45s | %s@." "Attribute" "FQL permissions"
    "Graph API permissions" "Correct";
  Format.printf "%s@." (String.make 125 '-');
  List.iter
    (fun d ->
      let subject = d.Audit.subject in
      let alias = Perms.graph_name subject in
      let name = if alias = subject then subject else subject ^ " (" ^ alias ^ ")" in
      let winner =
        match List.assoc_opt subject Perms.table2 with
        | Some Perms.Fql_was_right -> "FQL"
        | Some Perms.Graph_was_right -> "Graph API"
        | None -> "?"
      in
      Format.printf "%-22s | %-35s | %-45s | %s@." name
        (Format.asprintf "%a" Audit.pp_requirement d.Audit.left)
        (Format.asprintf "%a" Audit.pp_requirement d.Audit.right)
        winner)
    discrepancies;

  Format.printf
    "@.In all six cases the paper found (by issuing the queries) that the true@.\
     requirements agreed across APIs — the inconsistencies were documentation@.\
     bugs. Hand-maintained labelings drift; machine labeling cannot.@."
