(* Overprivilege detection (Section 2.2).

   A Facebook app requests a broad set of permissions but its actual query
   workload only touches friends' birthdays and public profile data. Labeling
   the workload reveals which requested permissions are unnecessary, and what
   a minimal sufficient request looks like.

   Run with: dune exec examples/overprivilege.exe *)

module Pipeline = Disclosure.Pipeline
module Audit = Disclosure.Audit
module Label = Disclosure.Label
module Sview = Disclosure.Sview
module Views = Fbschema.Fb_views
module Fb = Fbschema.Fb_schema

let view name = Option.get (Views.by_name name)

(* The app's manifest asks for far more than it uses. *)
let requested =
  [
    view "user_public";
    view "friend_public";
    view "friends_birthday";
    view "friends_location";
    view "user_likes";
    view "user_contact";
    view "friends_relationships";
  ]

(* Its actual workload: friends' birthdays (with the friend join) and names. *)
let user_query ?(consts = []) ~head_attrs () =
  let cell attr =
    match List.assoc_opt attr consts with
    | Some v -> Cq.Term.Const v
    | None -> Cq.Term.Var attr
  in
  Cq.Query.make ~name:"Q"
    ~head:(List.map (fun a -> Cq.Term.Var a) head_attrs)
    ~body:[ Cq.Atom.make "User" (List.map cell Fb.user_attrs) ]
    ()

let queries =
  [
    user_query
      ~consts:[ ("is_friend", Relational.Value.Bool true) ]
      ~head_attrs:[ "uid"; "birthday" ] ();
    user_query ~head_attrs:[ "uid"; "name"; "pic" ] ();
    Cq.Parser.query_exn "Q(f) :- Friend('me', f, e)";
  ]

let () =
  let pipeline = Views.pipeline () in
  let registry = Pipeline.registry pipeline in

  Format.printf "=== The app's workload and its labels ===@.";
  List.iter
    (fun q ->
      Format.printf "  %-60s label: %a@."
        (Cq.Query.to_string q)
        (Label.pp registry)
        (Pipeline.label pipeline q))
    queries;

  Format.printf "@.=== Requested permissions ===@.";
  List.iter (fun v -> Format.printf "  %s@." v.Sview.name) requested;

  let unnecessary = Audit.overprivileged pipeline ~requested ~queries in
  Format.printf "@.=== Individually unnecessary permissions ===@.";
  List.iter (fun v -> Format.printf "  %s@." v.Sview.name) unnecessary;

  let minimal = Audit.required_views pipeline queries in
  Format.printf "@.=== A minimal sufficient request (greedy) ===@.";
  List.iter (fun v -> Format.printf "  %s@." v.Sview.name) minimal;

  (* Sanity: the minimal request really covers the workload. *)
  let policy = Disclosure.Policy.stateless registry minimal in
  let all_covered =
    List.for_all (fun q -> Disclosure.Policy.allowed policy (Pipeline.label pipeline q)) queries
  in
  Format.printf "@.minimal request covers the whole workload: %b@." all_covered
