(* An app-ecosystem simulation: many apps, many queries, one platform.

   Simulates a day on a Facebook-like platform: a population of apps, each
   registered with a policy drawn from a realistic mix (public-only,
   friends-focused, self-focused, Chinese Wall), receiving a stream of
   workload queries. Reports per-category decision statistics, overall
   throughput, and an overprivilege report for one app — the paper's Figure 2
   deployment exercised end to end.

   Run with: dune exec examples/ecosystem_sim.exe *)

module Pipeline = Disclosure.Pipeline
module Service = Disclosure.Service
module Monitor = Disclosure.Monitor
module Sview = Disclosure.Sview
module Querygen = Workload.Querygen
module Rng = Workload.Rng

let pipeline = Fbschema.Fb_views.pipeline ()

let view name = Option.get (Fbschema.Fb_views.by_name name)

let views_with_prefix prefix =
  List.filter
    (fun v ->
      String.length v.Sview.name >= String.length prefix
      && String.sub v.Sview.name 0 (String.length prefix) = prefix)
    Fbschema.Fb_views.all

(* Four app archetypes with increasingly generous policies. *)
let archetypes =
  [
    ("public-only", fun () -> [ ("default", [ view "user_public"; view "friend_public" ]) ]);
    ( "friends-focused",
      fun () ->
        [
          ( "default",
            view "user_public" :: view "friend_public" :: views_with_prefix "friends" );
        ] );
    ( "self-focused",
      fun () -> [ ("default", view "friend_public" :: views_with_prefix "user_") ] );
    ( "chinese-wall",
      fun () ->
        [
          ("social", view "friend_public" :: views_with_prefix "friends");
          ("own", views_with_prefix "user_");
        ] );
  ]

let () =
  let rng = Rng.create 20260704 in
  let service = Service.create pipeline in
  let apps_per_archetype = 25 in
  let apps =
    List.concat_map
      (fun (kind, mk) ->
        List.init apps_per_archetype (fun i ->
            let name = Printf.sprintf "%s-%02d" kind i in
            Service.register service ~principal:name ~partitions:(mk ());
            (name, kind)))
      archetypes
  in
  let n_apps = List.length apps in
  let app_array = Array.of_list apps in
  Format.printf "=== Ecosystem: %d apps (%d archetypes), one platform ===@.@." n_apps
    (List.length archetypes);

  let gen = Querygen.create ~seed:7777 () in
  let n_queries = 20_000 in
  let t0 = Sys.time () in
  for _ = 1 to n_queries do
    let app, _ = app_array.(Rng.int rng n_apps) in
    let q = Querygen.generate_simple gen in
    ignore (Service.submit service ~principal:app q)
  done;
  let elapsed = Sys.time () -. t0 in

  (* Aggregate per archetype. *)
  let table = Hashtbl.create 8 in
  List.iter
    (fun (app, kind) ->
      let answered, refused = Service.stats service ~principal:app in
      let a0, r0 = Option.value ~default:(0, 0) (Hashtbl.find_opt table kind) in
      Hashtbl.replace table kind (a0 + answered, r0 + refused))
    apps;
  Format.printf "%-18s %10s %10s %12s@." "archetype" "answered" "refused" "refusal rate";
  Format.printf "%s@." (String.make 54 '-');
  List.iter
    (fun (kind, _) ->
      let answered, refused = Hashtbl.find table kind in
      let total = answered + refused in
      Format.printf "%-18s %10d %10d %11.1f%%@." kind answered refused
        (100.0 *. float refused /. float (max 1 total)))
    archetypes;
  Format.printf "@.%d queries labeled and checked in %.2fs CPU (%.0f queries/s)@."
    n_queries elapsed
    (float n_queries /. elapsed);

  (* Chinese-Wall apps end up on one side of their wall. *)
  let wall_apps = List.filter (fun (_, kind) -> kind = "chinese-wall") apps in
  let social, own =
    List.fold_left
      (fun (s, o) (app, _) ->
        match Service.alive service ~principal:app with
        | [ "social" ] -> (s + 1, o)
        | [ "own" ] -> (s, o + 1)
        | _ -> (s, o))
      (0, 0) wall_apps
  in
  Format.printf "@.Chinese-Wall apps: %d committed to social data, %d to own data, %d undecided@."
    social own
    (List.length wall_apps - social - own);

  (* Overprivilege report for one app: what did it request but never need? *)
  let sample_app, _ = List.hd apps in
  let trace = Querygen.create ~seed:99 () in
  let queries = Querygen.generate_many trace ~n:100 ~max_subqueries:1 in
  let requested = view "user_public" :: view "friend_public" :: views_with_prefix "friends" in
  let unused =
    Disclosure.Audit.overprivileged pipeline ~requested ~queries
  in
  Format.printf "@.overprivilege report for %s against its actual trace:@." sample_app;
  Format.printf "  requested %d permissions, %d individually unnecessary:@."
    (List.length requested) (List.length unused);
  List.iter (fun v -> Format.printf "    %s@." v.Sview.name) unused
